/**
 * @file
 * Tests for the experiment-campaign subsystem: spec expansion, the
 * work-stealing scheduler, engine determinism across thread counts
 * (byte-identical run directories), and fault-injected kill/resume.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "exp/campaign.hh"
#include "exp/campaigns.hh"
#include "exp/engine.hh"
#include "exp/rundir.hh"
#include "exp/scheduler.hh"
#include "fault/fault.hh"
#include "harness/workload.hh"
#include "util/watchdog.hh"

namespace cgp::exp
{
namespace
{

namespace fs = std::filesystem;

AxisPoint
depthPoint(const std::string &label, unsigned depth)
{
    return AxisPoint{label,
                     [depth](SimConfig &c) { c.depth = depth; }};
}

CampaignSpec
twoAxisSpec(SweepMode mode)
{
    CampaignSpec s;
    s.name = "t";
    s.workloads = {"w1", "w2"};
    s.base = SimConfig::withCgp(LayoutKind::PettisHansen, 1);
    ConfigAxis depth{"depth", {depthPoint("D2", 2),
                               depthPoint("D4", 4)}};
    ConfigAxis layout{
        "layout",
        {{"OM", [](SimConfig &c) {
              c.layout = LayoutKind::PettisHansen;
          }},
         {"O5", [](SimConfig &c) {
              c.layout = LayoutKind::Original;
          }}}};
    s.axes = {depth, layout};
    s.mode = mode;
    return s;
}

TEST(Campaign, CartesianExpansionFirstAxisSlowest)
{
    const auto configs = expandConfigs(twoAxisSpec(
        SweepMode::Cartesian));
    ASSERT_EQ(configs.size(), 4u);
    EXPECT_EQ(configs[0].label, "D2+OM");
    EXPECT_EQ(configs[1].label, "D2+O5");
    EXPECT_EQ(configs[2].label, "D4+OM");
    EXPECT_EQ(configs[3].label, "D4+O5");
    EXPECT_EQ(configs[0].config.depth, 2u);
    EXPECT_EQ(configs[3].config.depth, 4u);
    EXPECT_EQ(configs[3].config.layout, LayoutKind::Original);
}

TEST(Campaign, ZipExpansionIsElementWise)
{
    const auto configs = expandConfigs(twoAxisSpec(SweepMode::Zip));
    ASSERT_EQ(configs.size(), 2u);
    EXPECT_EQ(configs[0].label, "D2+OM");
    EXPECT_EQ(configs[1].label, "D4+O5");
}

TEST(Campaign, ZipRejectsUnequalAxes)
{
    CampaignSpec s = twoAxisSpec(SweepMode::Zip);
    s.axes[1].points.pop_back();
    EXPECT_THROW(expandConfigs(s), std::invalid_argument);
}

TEST(Campaign, EmptySpecRejected)
{
    CampaignSpec s;
    s.name = "empty";
    s.workloads = {"w"};
    EXPECT_THROW(expandConfigs(s), std::invalid_argument);
}

TEST(Campaign, ExplicitConfigLabelsFallBackToDescribe)
{
    CampaignSpec s;
    s.name = "t";
    s.workloads = {"w"};
    s.explicitConfigs = {SimConfig::o5(), SimConfig::o5Om()};
    const auto configs = expandConfigs(s);
    ASSERT_EQ(configs.size(), 2u);
    EXPECT_EQ(configs[0].label, "O5");
    EXPECT_EQ(configs[1].label, "O5+OM");

    s.explicitLabels = {"first", "second"};
    const auto named = expandConfigs(s);
    EXPECT_EQ(named[0].label, "first");
    EXPECT_EQ(named[1].label, "second");
}

TEST(Campaign, JobsAreWorkloadMajorWithDerivedSeeds)
{
    CampaignSpec s = twoAxisSpec(SweepMode::Zip);
    s.seed = 42;
    const auto jobs = expandJobs(s);
    ASSERT_EQ(jobs.size(), 4u);
    EXPECT_EQ(jobs[0].workload, "w1");
    EXPECT_EQ(jobs[1].workload, "w1");
    EXPECT_EQ(jobs[2].workload, "w2");
    EXPECT_EQ(jobs[0].label, "D2+OM");
    EXPECT_EQ(jobs[1].label, "D4+O5");
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(jobs[i].index, i);
        EXPECT_EQ(jobs[i].seed, jobSeed(42, i));
    }
    EXPECT_EQ(jobs[0].key(), "w1|D2+OM");

    // Seeds are distinct and reproducible.
    std::set<std::uint64_t> seeds;
    for (const auto &j : jobs)
        seeds.insert(j.seed);
    EXPECT_EQ(seeds.size(), jobs.size());
    EXPECT_EQ(expandJobs(s)[3].seed, jobs[3].seed);
}

TEST(Campaign, FingerprintPinsJobIdentity)
{
    CampaignSpec s = twoAxisSpec(SweepMode::Cartesian);
    const std::string fp = fingerprint(s, expandJobs(s));
    EXPECT_EQ(fp.size(), 16u);
    EXPECT_EQ(fp, fingerprint(s, expandJobs(s)));

    CampaignSpec seeded = s;
    seeded.seed = 1;
    EXPECT_NE(fp, fingerprint(seeded, expandJobs(seeded)));

    CampaignSpec fewer = s;
    fewer.workloads.pop_back();
    EXPECT_NE(fp, fingerprint(fewer, expandJobs(fewer)));
}

TEST(Campaign, PaperRegistryExpands)
{
    for (const std::string &name : campaignNames()) {
        const CampaignSpec spec = paperCampaign(name);
        EXPECT_FALSE(expandJobs(spec).empty()) << name;
    }
    EXPECT_THROW(paperCampaign("nonsense"), std::invalid_argument);
    EXPECT_EQ(campaignGroup("figures").size(), 11u);
    EXPECT_EQ(campaignGroup("fig4").size(), 1u);
}

TEST(Scheduler, RunsEveryJobExactlyOnce)
{
    constexpr std::size_t n = 200;
    std::vector<std::atomic<int>> hits(n);
    const ScheduleStats stats =
        runJobs(n, 8, [&hits](std::size_t i) { hits[i]++; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
    EXPECT_GE(stats.threads, 1u);
}

TEST(Scheduler, InlineWhenSingleThreaded)
{
    std::vector<std::size_t> order;
    const ScheduleStats stats =
        runJobs(5, 1, [&order](std::size_t i) {
            order.push_back(i);
        });
    EXPECT_EQ(stats.threads, 1u);
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, PropagatesFirstException)
{
    EXPECT_THROW(runJobs(50, 4,
                         [](std::size_t i) {
                             if (i == 17)
                                 throw std::runtime_error("boom");
                         }),
                 std::runtime_error);
}

TEST(Scheduler, ZeroJobsIsANoOp)
{
    const ScheduleStats stats =
        runJobs(0, 4, [](std::size_t) { FAIL(); });
    EXPECT_EQ(stats.steals, 0u);
}

TEST(Scheduler, FailurePolicyRoundTripsAndRejectsJunk)
{
    EXPECT_EQ(failurePolicyFromString("strict"),
              FailurePolicy::Strict);
    EXPECT_EQ(failurePolicyFromString("degrade"),
              FailurePolicy::Degrade);
    EXPECT_STREQ(toString(FailurePolicy::Strict), "strict");
    EXPECT_STREQ(toString(FailurePolicy::Degrade), "degrade");
    EXPECT_THROW(failurePolicyFromString("lenient"),
                 std::invalid_argument);
}

TEST(Scheduler, StrictAbortCarriesTheAggregatedFailures)
{
    bool ran_after = false;
    try {
        SchedulerOptions opt;
        opt.threads = 1;
        runJobs(10, opt, [&ran_after](std::size_t i) {
            if (i == 3)
                throw std::runtime_error("boom 3");
            if (i > 3)
                ran_after = true;
        });
        FAIL() << "expected CampaignAborted";
    } catch (const CampaignAborted &e) {
        ASSERT_EQ(e.failures().size(), 1u);
        EXPECT_EQ(e.failures()[0].index, 3u);
        EXPECT_EQ(e.failures()[0].kind, "error");
        EXPECT_EQ(e.failures()[0].message, "boom 3");
        EXPECT_NE(std::string(e.what()).find("boom 3"),
                  std::string::npos);
    }
    // Strict cancels everything queued behind the failure.
    EXPECT_FALSE(ran_after);
}

TEST(Scheduler, DegradeRecordsEveryFailureAndFinishesTheRest)
{
    constexpr std::size_t n = 40;
    std::vector<std::atomic<int>> hits(n);
    SchedulerOptions opt;
    opt.threads = 4;
    opt.policy = FailurePolicy::Degrade;
    const ScheduleStats stats =
        runJobs(n, opt, [&hits](std::size_t i) {
            hits[i]++;
            if (i % 7 == 0) {
                throw std::runtime_error(
                    "job " + std::to_string(i) + " failed");
            }
        });

    ASSERT_EQ(stats.failures.size(), 6u); // 0, 7, ..., 35
    for (std::size_t f = 0; f < stats.failures.size(); ++f) {
        EXPECT_EQ(stats.failures[f].index, f * 7);
        EXPECT_EQ(stats.failures[f].kind, "error");
    }
    EXPECT_EQ(stats.cancelledJobs, 0u);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << i; // every job still ran
}

TEST(Scheduler, ClassifiesFailuresByExceptionType)
{
    SchedulerOptions opt;
    opt.threads = 1;
    opt.policy = FailurePolicy::Degrade;
    const ScheduleStats stats = runJobs(3, opt, [](std::size_t i) {
        if (i == 0)
            throw TimeoutError("over budget");
        if (i == 1)
            throw fault::TransientIoError("flaky volume");
        throw std::logic_error("plain bug");
    });
    ASSERT_EQ(stats.failures.size(), 3u);
    EXPECT_EQ(stats.failures[0].kind, "timeout");
    EXPECT_EQ(stats.failures[1].kind, "transient-io");
    EXPECT_EQ(stats.failures[2].kind, "error");
    EXPECT_EQ(stats.failures[1].message, "flaky volume");
}

TEST(Scheduler, HungJobIsCancelledByTheMonitorAsATimeout)
{
    SchedulerOptions opt;
    opt.threads = 2;
    opt.policy = FailurePolicy::Degrade;
    opt.hangTimeoutSeconds = 0.05;
    const ScheduleStats stats = runJobs(3, opt, [](std::size_t i) {
        if (i != 0)
            return;
        // Livelock stand-in: spin until the monitor flips this
        // worker's token (the simulator core polls the same way).
        const auto deadline = std::chrono::steady_clock::now() +
            std::chrono::seconds(10);
        while (!cancelRequested()) {
            if (std::chrono::steady_clock::now() > deadline)
                throw std::runtime_error("monitor never fired");
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
        throw CancelledError("cancelled by the hung-job monitor");
    });
    ASSERT_EQ(stats.failures.size(), 1u);
    EXPECT_EQ(stats.failures[0].index, 0u);
    EXPECT_EQ(stats.failures[0].kind, "timeout");
}

TEST(Retry, BackoffIsDeterministicExponentialWithBoundedJitter)
{
    for (unsigned attempt = 1; attempt <= 10; ++attempt) {
        const unsigned ms = retryBackoffMs(1234, attempt);
        // Pure function: the same job backs off identically no
        // matter which worker retries it or at what -j.
        EXPECT_EQ(ms, retryBackoffMs(1234, attempt)) << attempt;
        const unsigned shift = attempt < 6 ? attempt : 6;
        EXPECT_GE(ms, 10u << shift);
        EXPECT_LT(ms, (10u << shift) + 10u);
    }
    // The jitter decorrelates jobs (no thundering herd).
    std::set<unsigned> delays;
    for (std::uint64_t seed = 0; seed < 10; ++seed)
        delays.insert(retryBackoffMs(seed, 1));
    EXPECT_GT(delays.size(), 1u);
}

/**
 * Engine tests run a real 2x2 campaign on tiny SPEC proxies.  The
 * workloads are built once and shared; runSimulation only reads
 * them.
 */
class EngineTest : public ::testing::Test
{
  protected:
    static CampaignSpec
    spec()
    {
        CampaignSpec s;
        s.name = "unit";
        s.title = "engine unit campaign";
        s.workloads = {"tiny-a", "tiny-b"};
        s.explicitConfigs = {
            SimConfig::o5Om(),
            SimConfig::withCgp(LayoutKind::PettisHansen, 4)};
        return s;
    }

    static InMemoryProvider &
    provider()
    {
        static InMemoryProvider p = [] {
            auto make = [](const char *name, unsigned funcs) {
                spec::SpecProgramSpec s;
                s.name = name;
                s.functions = funcs;
                s.hotFunctions = funcs / 2;
                s.workPerCall = 50.0;
                s.trainInstrs = 60'000;
                s.testInstrs = 15'000;
                return WorkloadFactory::buildSpec(s);
            };
            return InMemoryProvider(
                {make("tiny-a", 40), make("tiny-b", 60)});
        }();
        return p;
    }

    static std::string
    freshDir(const std::string &tag)
    {
        const fs::path dir =
            fs::temp_directory_path() / ("cgp-exp-test-" + tag);
        fs::remove_all(dir);
        return dir.string();
    }

    static std::string
    slurp(const fs::path &p)
    {
        std::ifstream in(p, std::ios::binary);
        std::ostringstream os;
        os << in.rdbuf();
        return os.str();
    }
};

TEST_F(EngineTest, RunsAllJobsAndIndexesResults)
{
    EngineOptions opt;
    opt.threads = 2;
    opt.verbose = false;
    const CampaignRun run = runCampaign(spec(), provider(), opt);

    ASSERT_EQ(run.jobs.size(), 4u);
    ASSERT_EQ(run.results.size(), 4u);
    EXPECT_EQ(run.executed, 4u);
    EXPECT_EQ(run.skipped, 0u);
    EXPECT_EQ(run.workloadNames(),
              (std::vector<std::string>{"tiny-a", "tiny-b"}));
    EXPECT_EQ(run.configLabels(),
              (std::vector<std::string>{"O5+OM", "O5+OM+CGP_4"}));
    for (const JobSpec &j : run.jobs) {
        const SimResult &r = run.results[j.index];
        EXPECT_EQ(r.workload, j.workload);
        EXPECT_EQ(r.config, j.label);
        EXPECT_GT(r.cycles, 0u);
    }
    EXPECT_EQ(&run.at("tiny-a", "O5+OM"), run.find("tiny-a", "O5+OM"));
    EXPECT_EQ(run.find("tiny-a", "nope"), nullptr);
    EXPECT_THROW(run.at("tiny-a", "nope"), std::out_of_range);
}

TEST_F(EngineTest, RunDirIsByteIdenticalAcrossThreadCounts)
{
    std::vector<std::string> dirs;
    for (const unsigned threads : {1u, 2u, 8u}) {
        EngineOptions opt;
        opt.threads = threads;
        opt.verbose = false;
        opt.runDir =
            freshDir("det-" + std::to_string(threads));
        runCampaign(spec(), provider(), opt);
        dirs.push_back(opt.runDir);
    }

    const std::string manifest =
        slurp(fs::path(dirs[0]) / "manifest.json");
    EXPECT_FALSE(manifest.empty());
    // No execution-environment data may leak into the run dir.
    EXPECT_EQ(manifest.find("threads"), std::string::npos);
    EXPECT_EQ(manifest.find("wall"), std::string::npos);

    for (std::size_t d = 1; d < dirs.size(); ++d) {
        EXPECT_EQ(manifest,
                  slurp(fs::path(dirs[d]) / "manifest.json"));
        for (std::size_t i = 0; i < 4; ++i) {
            const std::string file = RunDir::jobFileName(i);
            EXPECT_EQ(slurp(fs::path(dirs[0]) / file),
                      slurp(fs::path(dirs[d]) / file))
                << file << " differs at threads variant " << d;
        }
    }
    for (const auto &d : dirs)
        fs::remove_all(d);
}

TEST_F(EngineTest, KilledRunResumesWithoutRerunningCompletedJobs)
{
    // Reference: a clean run, no run directory.
    EngineOptions ref_opt;
    ref_opt.threads = 1;
    ref_opt.verbose = false;
    const CampaignRun ref = runCampaign(spec(), provider(), ref_opt);

    const std::string dir = freshDir("resume");

    // Phase 1: single-threaded so completion order is the job order,
    // killed by an injected crash right after the second job becomes
    // durable ("exp.record" sits past the job file + manifest write).
    fault::FaultInjector inj;
    inj.arm("exp.record", {fault::FaultKind::Crash, 1, 1});
    {
        fault::ScopedGlobalInjector scoped(inj);
        EngineOptions opt;
        opt.threads = 1;
        opt.verbose = false;
        opt.runDir = dir;
        EXPECT_THROW(runCampaign(spec(), provider(), opt),
                     fault::CrashInjected);
    }
    ASSERT_EQ(inj.fired().size(), 1u);
    EXPECT_EQ(inj.fired()[0].point, "exp.record");

    // Phase 2: resume (multi-threaded) — the two durable jobs are
    // loaded, only the two lost ones are simulated.
    EngineOptions opt;
    opt.threads = 2;
    opt.verbose = false;
    opt.runDir = dir;
    const CampaignRun resumed = runCampaign(spec(), provider(), opt);
    EXPECT_EQ(resumed.skipped, 2u);
    EXPECT_EQ(resumed.executed, 2u);

    ASSERT_EQ(resumed.results.size(), ref.results.size());
    for (std::size_t i = 0; i < ref.results.size(); ++i)
        EXPECT_EQ(resumed.results[i], ref.results[i]) << "job " << i;

    // A second resume has nothing left to do.
    const CampaignRun again = runCampaign(spec(), provider(), opt);
    EXPECT_EQ(again.skipped, 4u);
    EXPECT_EQ(again.executed, 0u);
    fs::remove_all(dir);
}

TEST_F(EngineTest, CrashBeforeRecordLosesOnlyThatJob)
{
    const std::string dir = freshDir("prerecord");
    fault::FaultInjector inj;
    inj.arm("exp.pre_record", {fault::FaultKind::Crash, 0, 1});
    {
        fault::ScopedGlobalInjector scoped(inj);
        EngineOptions opt;
        opt.threads = 1;
        opt.verbose = false;
        opt.runDir = dir;
        EXPECT_THROW(runCampaign(spec(), provider(), opt),
                     fault::CrashInjected);
    }
    // The crash fired before anything was written: full re-run.
    EngineOptions opt;
    opt.threads = 1;
    opt.verbose = false;
    opt.runDir = dir;
    const CampaignRun resumed = runCampaign(spec(), provider(), opt);
    EXPECT_EQ(resumed.skipped, 0u);
    EXPECT_EQ(resumed.executed, 4u);
    fs::remove_all(dir);
}

TEST_F(EngineTest, RunDirRejectsDifferentCampaign)
{
    const std::string dir = freshDir("mismatch");
    EngineOptions opt;
    opt.threads = 1;
    opt.verbose = false;
    opt.runDir = dir;
    runCampaign(spec(), provider(), opt);

    CampaignSpec other = spec();
    other.seed = 99; // different fingerprint
    EXPECT_THROW(runCampaign(other, provider(), opt),
                 std::runtime_error);
    fs::remove_all(dir);
}

TEST_F(EngineTest, LoadRunDirReportsCompletion)
{
    const std::string dir = freshDir("load");
    EngineOptions opt;
    opt.threads = 2;
    opt.verbose = false;
    opt.runDir = dir;
    const CampaignRun run = runCampaign(spec(), provider(), opt);

    const LoadedRun loaded = loadRunDir(dir);
    EXPECT_EQ(loaded.campaign, "unit");
    EXPECT_EQ(loaded.fingerprint, run.fingerprint);
    ASSERT_EQ(loaded.jobs.size(), 4u);
    ASSERT_EQ(loaded.results.size(), 4u);
    for (const auto &[index, result] : loaded.results)
        EXPECT_EQ(result, run.results[index]);

    EXPECT_THROW(loadRunDir(dir + "-nonexistent"),
                 std::runtime_error);
    fs::remove_all(dir);
}

TEST_F(EngineTest, UnknownWorkloadNameThrows)
{
    CampaignSpec s = spec();
    s.workloads.push_back("missing");
    EngineOptions opt;
    opt.threads = 1;
    opt.verbose = false;
    EXPECT_THROW(runCampaign(s, provider(), opt),
                 std::invalid_argument);
}

TEST_F(EngineTest, TransientFailureIsRetriedToSuccess)
{
    fault::FaultInjector inj;
    inj.arm("exp.job", {fault::FaultKind::TransientIo, 0, 1});
    fault::ScopedGlobalInjector scoped(inj);

    EngineOptions opt;
    opt.threads = 1;
    opt.verbose = false;
    opt.retries = 2;
    const CampaignRun run = runCampaign(spec(), provider(), opt);

    ASSERT_EQ(inj.fired().size(), 1u); // one injected failure...
    EXPECT_EQ(run.executed, 4u);       // ...absorbed by the retry
    EXPECT_TRUE(run.failures.empty());
    for (const SimResult &r : run.results)
        EXPECT_GT(r.cycles, 0u);
}

TEST_F(EngineTest, ExhaustedRetriesFailTheJobAsTransientIo)
{
    fault::FaultInjector inj;
    inj.arm("exp.job", {fault::FaultKind::TransientIo, 0, 99});
    fault::ScopedGlobalInjector scoped(inj);

    EngineOptions opt;
    opt.threads = 1;
    opt.verbose = false;
    opt.retries = 1; // attempt 1 + one retry, both injected
    try {
        runCampaign(spec(), provider(), opt);
        FAIL() << "expected CampaignAborted";
    } catch (const CampaignAborted &e) {
        ASSERT_EQ(e.failures().size(), 1u);
        EXPECT_EQ(e.failures()[0].index, 0u);
        EXPECT_EQ(e.failures()[0].kind, "transient-io");
        EXPECT_EQ(e.failures()[0].attempts, 2u);
    }
}

TEST_F(EngineTest, DegradeCompletesHealthyJobsAndRecordsFailures)
{
    // Jobs 1 and 3 (the "tiny" config) blow a 2k-cycle budget; job 0
    // additionally eats an injected transient failure with no retry
    // budget.  Only job 2 is healthy.
    CampaignSpec s = spec();
    SimConfig tiny = SimConfig::o5Om();
    tiny.core.maxCycles = 2'000;
    s.explicitConfigs = {SimConfig::o5Om(), tiny};
    s.explicitLabels = {"base", "tiny"};
    s.policy = FailurePolicy::Degrade;

    fault::FaultInjector inj;
    inj.arm("exp.job", {fault::FaultKind::TransientIo, 0, 1});

    const std::string dir = freshDir("degrade");
    EngineOptions opt;
    opt.threads = 1; // job order == index order: the fault hits job 0
    opt.verbose = false;
    opt.runDir = dir;
    CampaignRun run;
    {
        fault::ScopedGlobalInjector scoped(inj);
        run = runCampaign(s, provider(), opt);
    }

    EXPECT_EQ(run.executed, 1u);
    ASSERT_EQ(run.failures.size(), 3u);
    EXPECT_EQ(run.failures[0].index, 0u);
    EXPECT_EQ(run.failures[0].kind, "transient-io");
    EXPECT_EQ(run.failures[1].index, 1u);
    EXPECT_EQ(run.failures[1].kind, "timeout");
    EXPECT_NE(run.failures[1].message.find("cycle"),
              std::string::npos);
    EXPECT_EQ(run.failures[2].index, 3u);
    EXPECT_EQ(run.failures[2].kind, "timeout");
    EXPECT_GT(run.results[2].cycles, 0u); // the healthy job ran

    // The manifest records the failures for `cgpbench report`.
    const LoadedRun loaded = loadRunDir(dir);
    ASSERT_EQ(loaded.failures.size(), 3u);
    EXPECT_EQ(loaded.failures.at(0).kind, "transient-io");
    EXPECT_EQ(loaded.failures.at(1).kind, "timeout");
    EXPECT_EQ(loaded.failures.at(3).kind, "timeout");
    EXPECT_EQ(loaded.results.size(), 1u);

    // A resume re-runs failed jobs: the transient one (no fault
    // armed now) succeeds, the budget-starved pair fails again.
    const CampaignRun again = runCampaign(s, provider(), opt);
    EXPECT_EQ(again.skipped, 1u);
    EXPECT_EQ(again.executed, 1u);
    ASSERT_EQ(again.failures.size(), 2u);
    EXPECT_EQ(again.failures[0].index, 1u);
    EXPECT_EQ(again.failures[1].index, 3u);
    fs::remove_all(dir);
}

TEST_F(EngineTest, WatchdogCycleBudgetClassifiesRunawaysAsTimeouts)
{
    EngineOptions opt;
    opt.threads = 2;
    opt.verbose = false;
    opt.watchdogCycles = 1'000; // far below any real job
    opt.onFail = FailurePolicy::Degrade; // CLI-style override
    const CampaignRun run = runCampaign(spec(), provider(), opt);

    EXPECT_EQ(run.executed, 0u);
    ASSERT_EQ(run.failures.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(run.failures[i].index, i);
        EXPECT_EQ(run.failures[i].kind, "timeout");
    }
}

TEST_F(EngineTest, CorruptedArtifactsAreQuarantinedAndRerun)
{
    const std::string dir = freshDir("fuzz");
    EngineOptions opt;
    opt.threads = 1;
    opt.verbose = false;
    opt.runDir = dir;
    const CampaignRun ref = runCampaign(spec(), provider(), opt);

    // Bit-flip one job file, truncate another, tear the manifest.
    const auto rewrite = [](const fs::path &p,
                            const std::string &bytes) {
        std::ofstream(p, std::ios::binary | std::ios::trunc)
            << bytes;
    };
    std::string flipped = slurp(fs::path(dir) / "job-0000.json");
    flipped[flipped.size() / 2] =
        static_cast<char>(flipped[flipped.size() / 2] ^ 0x01);
    rewrite(fs::path(dir) / "job-0000.json", flipped);

    const std::string halfJob = slurp(fs::path(dir) / "job-0001.json");
    rewrite(fs::path(dir) / "job-0001.json",
            halfJob.substr(0, halfJob.size() / 2));

    const std::string halfMan = slurp(fs::path(dir) / "manifest.json");
    rewrite(fs::path(dir) / "manifest.json",
            halfMan.substr(0, halfMan.size() / 2));

    const CampaignRun resumed = runCampaign(spec(), provider(), opt);
    EXPECT_EQ(resumed.quarantined, 3u);
    EXPECT_EQ(resumed.skipped, 2u);
    EXPECT_EQ(resumed.executed, 2u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(resumed.results[i], ref.results[i]) << i;

    // Nothing was deleted: the damaged artifacts sit in quarantine.
    const VerifyReport report = verifyRunDir(dir);
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.jobsDone, 4u);
    EXPECT_EQ(report.jobFilesOk, 4u);
    EXPECT_EQ(report.quarantineEntries.size(), 3u);
    fs::remove_all(dir);
}

TEST_F(EngineTest, OrphanedTmpFilesAreSweptOnOpen)
{
    const std::string dir = freshDir("sweep");
    EngineOptions opt;
    opt.threads = 1;
    opt.verbose = false;
    opt.runDir = dir;
    runCampaign(spec(), provider(), opt);

    // A writer killed mid-write leaves *.tmp droppings behind.
    std::ofstream(fs::path(dir) / "job-0002.json.tmp") << "{ half";
    std::ofstream(fs::path(dir) / "manifest.json.tmp") << "{";

    const VerifyReport before = verifyRunDir(dir);
    EXPECT_FALSE(before.ok());
    EXPECT_EQ(before.issues.size(), 2u);

    const CampaignRun resumed = runCampaign(spec(), provider(), opt);
    EXPECT_EQ(resumed.skipped, 4u);
    EXPECT_FALSE(fs::exists(fs::path(dir) / "job-0002.json.tmp"));
    EXPECT_FALSE(fs::exists(fs::path(dir) / "manifest.json.tmp"));
    EXPECT_TRUE(verifyRunDir(dir).ok());
    fs::remove_all(dir);
}

TEST_F(EngineTest, RunDirLockRejectsALiveOwnerAndStealsAStaleOne)
{
    const std::string dir = freshDir("lock");
    fs::create_directories(dir);
    EngineOptions opt;
    opt.threads = 1;
    opt.verbose = false;
    opt.runDir = dir;

    // pid 1 is always alive (and never this test process).
    std::ofstream(fs::path(dir) / ".lock") << "1\n";
    EXPECT_THROW(runCampaign(spec(), provider(), opt),
                 std::runtime_error);

    // A dead owner's lock is stolen and the campaign proceeds.
    std::ofstream(fs::path(dir) / ".lock",
                  std::ios::binary | std::ios::trunc)
        << "999999999\n";
    const CampaignRun run = runCampaign(spec(), provider(), opt);
    EXPECT_EQ(run.executed, 4u);
    // Released when the engine's RunDir went out of scope.
    EXPECT_FALSE(fs::exists(fs::path(dir) / ".lock"));
    fs::remove_all(dir);
}

TEST_F(EngineTest, RunDirLockIsExclusiveWithinTheProcess)
{
    const std::string dir = freshDir("lock2");
    const CampaignSpec s = spec();
    const auto jobs = expandJobs(s);
    const std::string fp = fingerprint(s, jobs);

    RunDir first(dir);
    first.prepare(s, jobs, fp);
    RunDir second(dir);
    EXPECT_THROW(second.prepare(s, jobs, fp), std::runtime_error);
    fs::remove_all(dir);
}

TEST_F(EngineTest, MidRecordCrashKeepsTheDurableJobFile)
{
    EngineOptions ref_opt;
    ref_opt.threads = 1;
    ref_opt.verbose = false;
    const CampaignRun ref = runCampaign(spec(), provider(), ref_opt);

    const std::string dir = freshDir("midrecord");
    fault::FaultInjector inj;
    inj.arm("exp.mid_record", {fault::FaultKind::Crash, 0, 1});
    {
        fault::ScopedGlobalInjector scoped(inj);
        EngineOptions opt;
        opt.threads = 1;
        opt.verbose = false;
        opt.runDir = dir;
        EXPECT_THROW(runCampaign(spec(), provider(), opt),
                     fault::CrashInjected);
    }
    // The job file hit disk before the crash; the stale manifest
    // (still "pending") must not lose it on resume.
    EngineOptions opt;
    opt.threads = 1;
    opt.verbose = false;
    opt.runDir = dir;
    const CampaignRun resumed = runCampaign(spec(), provider(), opt);
    EXPECT_EQ(resumed.skipped, 1u);
    EXPECT_EQ(resumed.executed, 3u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(resumed.results[i], ref.results[i]) << i;
    fs::remove_all(dir);
}

TEST_F(EngineTest, TornJobFileWriteIsCaughtByTheSealOnResume)
{
    const std::string dir = freshDir("torn");
    fault::FaultInjector inj;
    // Hits on the durable-write path: 1 = .lock, 2 = the prepare
    // manifest, 3 = the resume flush, 4 = job 0's file — tear that.
    inj.arm("exp.artifact_write",
            {fault::FaultKind::TornWrite, 3, 1});
    {
        fault::ScopedGlobalInjector scoped(inj);
        EngineOptions opt;
        opt.threads = 1;
        opt.verbose = false;
        opt.runDir = dir;
        EXPECT_THROW(runCampaign(spec(), provider(), opt),
                     fault::CrashInjected);
    }
    ASSERT_EQ(inj.fired().size(), 1u);
    EXPECT_EQ(inj.fired()[0].point, "exp.artifact_write");
    // The half-written bytes were published under the final name:
    // only the CRC seal can tell them from a good artifact.
    EXPECT_TRUE(fs::exists(fs::path(dir) / "job-0000.json"));

    EngineOptions opt;
    opt.threads = 1;
    opt.verbose = false;
    opt.runDir = dir;
    const CampaignRun resumed = runCampaign(spec(), provider(), opt);
    EXPECT_GE(resumed.quarantined, 1u);
    EXPECT_EQ(resumed.skipped, 0u);
    EXPECT_EQ(resumed.executed, 4u);
    fs::remove_all(dir);
}

TEST(Campaign, ArbiterSweepCoversTheKnobCube)
{
    const CampaignSpec s = paperCampaign("arbiter-sweep");
    const auto jobs = expandJobs(s);
    EXPECT_EQ(jobs.size(), 54u); // 3x3x3 configs, 2 workloads
    EXPECT_EQ(jobs[0].label, "acc10+probe4+filt64");
    const auto &ablations = campaignGroup("ablations");
    EXPECT_NE(std::find(ablations.begin(), ablations.end(),
                        "arbiter-sweep"),
              ablations.end());
}

} // namespace
} // namespace cgp::exp
