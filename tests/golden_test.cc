/**
 * @file
 * Golden-result regression suite: three small deterministic
 * configurations run end-to-end through runSimulation and their
 * SimResult JSON is byte-compared against the checked-in goldens in
 * tests/golden/.  The simulator is single-threaded per job and
 * Json::dump is byte-stable (fixed insertion order, deterministic
 * number formatting), so any byte difference is a genuine behaviour
 * change — intended changes update the goldens, unintended ones fail
 * here before they reach the paper figures.
 *
 * Regenerating the goldens after an intended behaviour change:
 *
 *     cmake --build build -j && \
 *         CGP_GOLDEN_REGEN=1 ./build/tests/test_golden
 *
 * then inspect `git diff tests/golden/` and commit the new files
 * together with the change that moved the numbers.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/campaigns.hh"
#include "harness/report.hh"
#include "harness/simulator.hh"

#ifndef CGP_GOLDEN_DIR
#error "CGP_GOLDEN_DIR must point at the checked-in goldens"
#endif

namespace cgp
{
namespace
{

struct GoldenCase
{
    const char *file;     ///< file name under tests/golden/
    const char *workload; ///< paper-registry workload name
    SimConfig config;
};

/** The locked-down matrix: baseline, I-side CGP, D-side combined,
 *  and the throttled I+D arbiter point. */
std::vector<GoldenCase>
goldenCases()
{
    return {
        {"smoke_o5.json", "smoke-a", SimConfig::o5()},
        {"smoke_cgp4.json", "smoke-a",
         SimConfig::withCgp(LayoutKind::PettisHansen, 4)},
        // The smoke programs barely miss in the D-cache, so the
        // D-side cases run on the small profiling DB workload where
        // the combined engine actually fires.
        {"wiscprof_dcombined.json", "wisc-prof",
         SimConfig::withDPrefetch(DataPrefetchKind::Combined)},
        {"wiscprof_iplusd_arb.json", "wisc-prof",
         SimConfig::withIPlusD(DataPrefetchKind::Combined, true)},
    };
}

std::string
goldenPath(const char *file)
{
    return std::string(CGP_GOLDEN_DIR) + "/" + file;
}

bool
regenRequested()
{
    const char *env = std::getenv("CGP_GOLDEN_REGEN");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Run one golden case; the workload bank is shared so the trace is
 *  built once per program regardless of test order. */
SimResult
runCase(const GoldenCase &c)
{
    static exp::PaperWorkloadBank bank;
    return runSimulation(bank.resolve(c.workload), c.config);
}

std::string
serialize(const SimResult &r)
{
    return toJson(r).dump(2) + "\n";
}

TEST(Golden, ResultsMatchCheckedInGoldens)
{
    for (const GoldenCase &c : goldenCases()) {
        const std::string path = goldenPath(c.file);
        const std::string got = serialize(runCase(c));

        if (regenRequested()) {
            std::ofstream out(path, std::ios::binary);
            ASSERT_TRUE(out) << "cannot write " << path;
            out << got;
            continue;
        }

        const std::string want = readFile(path);
        ASSERT_FALSE(want.empty())
            << path << " is missing — regenerate with "
            << "CGP_GOLDEN_REGEN=1 ./test_golden";
        // Byte equality: diffs point at the exact stat that moved.
        EXPECT_EQ(got, want) << c.file;
    }
}

TEST(Golden, RunsAreDeterministicAcrossRepeats)
{
    const GoldenCase c = goldenCases().front();
    EXPECT_EQ(serialize(runCase(c)), serialize(runCase(c)));
}

TEST(Golden, ByteCompareCatchesAPerturbedStat)
{
    // Self-check of the mechanism: a single off-by-one in any stat
    // must change the serialized bytes.
    const GoldenCase c = goldenCases().front();
    SimResult r = runCase(c);
    const std::string clean = serialize(r);
    r.cycles += 1;
    EXPECT_NE(serialize(r), clean);
    r.cycles -= 1;
    r.dpf.useless += 1;
    EXPECT_NE(serialize(r), clean);
}

TEST(Golden, SerializedGoldensRoundTrip)
{
    if (regenRequested())
        GTEST_SKIP() << "regenerating";
    for (const GoldenCase &c : goldenCases()) {
        const std::string want = readFile(goldenPath(c.file));
        ASSERT_FALSE(want.empty()) << c.file;
        const SimResult parsed =
            simResultFromJson(Json::parse(want));
        EXPECT_EQ(serialize(parsed), want) << c.file;
    }
}

} // namespace
} // namespace cgp
