/**
 * @file
 * Tests for the storage-manager substrate: slotted pages, tuples,
 * the volume, buffer pool (pinning, eviction, write-back), lock
 * manager, write-ahead log and transactions.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "db/buffer_pool.hh"
#include "db/context.hh"
#include "db/lock.hh"
#include "db/page.hh"
#include "db/tuple.hh"
#include "db/txn.hh"
#include "db/volume.hh"
#include "db/wal.hh"

namespace cgp::db
{
namespace
{

struct Fixture
{
    FunctionRegistry reg;
    TraceBuffer buf;
    DbContext ctx{reg, buf};
};

TEST(Tuple, SchemaLayout)
{
    const Schema s({{"a", ColumnType::Int32, 4},
                    {"b", ColumnType::Char, 8},
                    {"c", ColumnType::Int32, 4}});
    EXPECT_EQ(s.columnCount(), 3u);
    EXPECT_EQ(s.recordBytes(), 16u);
    EXPECT_EQ(s.offsetOf(0), 0u);
    EXPECT_EQ(s.offsetOf(1), 4u);
    EXPECT_EQ(s.offsetOf(2), 12u);
    EXPECT_EQ(s.indexOf("b"), 1u);
}

TEST(Tuple, RoundTripValues)
{
    const Schema s({{"a", ColumnType::Int32, 4},
                    {"b", ColumnType::Char, 8}});
    Tuple t(&s);
    t.setInt(0, -12345);
    t.setString(1, "hello");
    EXPECT_EQ(t.getInt(0), -12345);
    EXPECT_EQ(t.getString(1), "hello");

    // Reconstruct from raw bytes.
    Tuple u(&s, t.data());
    EXPECT_EQ(u.getInt(0), -12345);
    EXPECT_EQ(u.getString(1), "hello");
}

TEST(Tuple, StringTruncatesToWidth)
{
    const Schema s({{"b", ColumnType::Char, 4}});
    Tuple t(&s);
    t.setString(0, "abcdefgh");
    EXPECT_EQ(t.getString(0), "abcd");
}

TEST(Tuple, Concat)
{
    const Schema a({{"x", ColumnType::Int32, 4}});
    const Schema b({{"y", ColumnType::Int32, 4}});
    const Schema ab = concatSchemas(a, b);
    Tuple ta(&a), tb(&b);
    ta.setInt(0, 7);
    tb.setInt(0, 9);
    const Tuple t = concatTuples(&ab, ta, tb);
    EXPECT_EQ(t.getInt(0), 7);
    EXPECT_EQ(t.getInt(1), 9);
}

TEST(SlottedPage, InsertAndRead)
{
    std::vector<std::uint8_t> frame(pageBytes, 0);
    SlottedPage page(frame.data());
    page.init();
    EXPECT_EQ(page.slotCount(), 0u);

    const char rec1[] = "record-one";
    const char rec2[] = "record-two!";
    const auto s1 = page.insert(
        reinterpret_cast<const std::uint8_t *>(rec1), sizeof(rec1));
    const auto s2 = page.insert(
        reinterpret_cast<const std::uint8_t *>(rec2), sizeof(rec2));
    ASSERT_NE(s1, SlottedPage::invalidSlot);
    ASSERT_NE(s2, SlottedPage::invalidSlot);
    EXPECT_EQ(page.slotCount(), 2u);

    std::uint16_t len = 0;
    const auto *p1 = page.read(s1, &len);
    ASSERT_NE(p1, nullptr);
    EXPECT_EQ(len, sizeof(rec1));
    EXPECT_EQ(std::memcmp(p1, rec1, len), 0);

    EXPECT_EQ(page.read(99), nullptr);
}

TEST(SlottedPage, UpdateInPlace)
{
    std::vector<std::uint8_t> frame(pageBytes, 0);
    SlottedPage page(frame.data());
    page.init();
    const char rec[] = "aaaa";
    const char upd[] = "bbbb";
    const auto s = page.insert(
        reinterpret_cast<const std::uint8_t *>(rec), sizeof(rec));
    EXPECT_TRUE(page.update(
        s, reinterpret_cast<const std::uint8_t *>(upd), sizeof(upd)));
    std::uint16_t len = 0;
    EXPECT_EQ(std::memcmp(page.read(s, &len), upd, sizeof(upd)), 0);
    // Wrong length refused.
    EXPECT_FALSE(page.update(
        s, reinterpret_cast<const std::uint8_t *>(upd), 2));
}

TEST(SlottedPage, FillsUntilFull)
{
    std::vector<std::uint8_t> frame(pageBytes, 0);
    SlottedPage page(frame.data());
    page.init();
    std::uint8_t rec[100] = {0};
    unsigned inserted = 0;
    while (page.insert(rec, sizeof(rec)) != SlottedPage::invalidSlot)
        ++inserted;
    // ~8KB / (100B + 4B slot) ~ 78 records.
    EXPECT_GE(inserted, 70u);
    EXPECT_LE(inserted, 81u);
    EXPECT_FALSE(page.fits(sizeof(rec)));
}

TEST(Volume, AllocReadWrite)
{
    Fixture fx;
    Volume vol(fx.ctx);
    const PageId p = vol.allocPage();
    EXPECT_EQ(vol.pageCount(), 1u);

    std::vector<std::uint8_t> w(pageBytes, 0xAB), r(pageBytes, 0);
    vol.writePage(p, w.data());
    vol.readPage(p, r.data());
    EXPECT_EQ(r, w);
}

TEST(BufferPool, FixPinsAndCaches)
{
    Fixture fx;
    Volume vol(fx.ctx);
    BufferPool pool(fx.ctx, vol, 8);
    const PageId p = vol.allocPage();

    std::uint8_t *f1 = pool.fix(p);
    ASSERT_NE(f1, nullptr);
    EXPECT_EQ(pool.pinCount(p), 1u);
    EXPECT_EQ(pool.diskReads(), 1u);

    std::uint8_t *f2 = pool.fix(p);
    EXPECT_EQ(f1, f2);            // same frame
    EXPECT_EQ(pool.pinCount(p), 2u);
    EXPECT_EQ(pool.diskReads(), 1u); // no re-read

    pool.unfix(p, false);
    pool.unfix(p, false);
    EXPECT_EQ(pool.pinCount(p), 0u);
    EXPECT_EQ(pool.residentPages(), 1u); // still cached
}

TEST(BufferPool, EvictsLruUnpinned)
{
    Fixture fx;
    Volume vol(fx.ctx);
    BufferPool pool(fx.ctx, vol, 2);
    const PageId a = vol.allocPage();
    const PageId b = vol.allocPage();
    const PageId c = vol.allocPage();

    pool.fix(a);
    pool.unfix(a, false);
    pool.fix(b);
    pool.unfix(b, false);
    pool.fix(a); // a more recent than b
    pool.unfix(a, false);

    pool.fix(c); // evicts b (LRU)
    pool.unfix(c, false);
    EXPECT_EQ(pool.evictions(), 1u);

    const auto reads_before = pool.diskReads();
    pool.fix(a); // still resident
    pool.unfix(a, false);
    EXPECT_EQ(pool.diskReads(), reads_before);
    pool.fix(b); // was evicted: re-read
    pool.unfix(b, false);
    EXPECT_EQ(pool.diskReads(), reads_before + 1);
}

TEST(BufferPool, DirtyEvictionWritesBack)
{
    Fixture fx;
    Volume vol(fx.ctx);
    BufferPool pool(fx.ctx, vol, 1);
    const PageId a = vol.allocPage();
    const PageId b = vol.allocPage();

    std::uint8_t *fa = pool.fix(a);
    fa[100] = 0x5A;
    pool.unfix(a, true); // dirty

    pool.fix(b); // forces write-back of a
    pool.unfix(b, false);

    std::vector<std::uint8_t> img(pageBytes, 0);
    vol.readPage(a, img.data());
    EXPECT_EQ(img[100], 0x5A);
}

TEST(BufferPool, FlushAllPersistsDirtyFrames)
{
    Fixture fx;
    Volume vol(fx.ctx);
    BufferPool pool(fx.ctx, vol, 4);
    const PageId a = vol.allocPage();
    std::uint8_t *fa = pool.fix(a);
    fa[7] = 0x77;
    pool.unfix(a, true);
    pool.flushAll();
    std::vector<std::uint8_t> img(pageBytes, 0);
    vol.readPage(a, img.data());
    EXPECT_EQ(img[7], 0x77);
}

TEST(BufferPool, FrameAddrIsStableAndInSegment)
{
    Fixture fx;
    Volume vol(fx.ctx);
    BufferPool pool(fx.ctx, vol, 4, 0x5000'0000);
    const PageId a = vol.allocPage();
    pool.fix(a);
    const Addr addr = pool.frameAddr(a, 128);
    EXPECT_GE(addr, 0x5000'0000u);
    EXPECT_LT(addr, 0x5000'0000u + 4 * pageBytes);
    pool.unfix(a, false);
}

TEST(BufferPool, ClockPolicyEvictsUnreferenced)
{
    Fixture fx;
    Volume vol(fx.ctx);
    BufferPool pool(fx.ctx, vol, 2, bufferSegmentBase,
                    Replacement::Clock);
    const PageId a = vol.allocPage();
    const PageId b = vol.allocPage();
    const PageId c = vol.allocPage();

    pool.fix(a);
    pool.unfix(a, false);
    pool.fix(b);
    pool.unfix(b, false);
    // Touch a again: its reference bit survives one sweep.
    pool.fix(a);
    pool.unfix(a, false);

    pool.fix(c); // clock sweep must evict someone unpinned
    pool.unfix(c, false);
    EXPECT_EQ(pool.evictions(), 1u);
    EXPECT_EQ(pool.residentPages(), 2u);

    // Pinned frames are never chosen by the sweep.
    pool.fix(c);
    pool.fix(a); // repin a (may re-read)
    pool.unfix(a, false);
    pool.unfix(c, false);
}

TEST(BufferPool, ClockNeverEvictsPinned)
{
    Fixture fx;
    Volume vol(fx.ctx);
    BufferPool pool(fx.ctx, vol, 2, bufferSegmentBase,
                    Replacement::Clock);
    const PageId a = vol.allocPage();
    const PageId b = vol.allocPage();
    const PageId c = vol.allocPage();
    pool.fix(a); // stays pinned
    pool.fix(b);
    pool.unfix(b, false);
    pool.fix(c); // must evict b, not a
    EXPECT_EQ(pool.pinCount(a), 1u);
    pool.unfix(c, false);
    pool.unfix(a, false);
}

TEST(LockManager, AcquireReleaseAndUpgrade)
{
    Fixture fx;
    LockManager locks(fx.ctx);
    EXPECT_TRUE(locks.acquire(1, 10, LockMode::Shared));
    EXPECT_TRUE(locks.holds(1, 10));
    EXPECT_EQ(locks.modeOf(1, 10), LockMode::Shared);

    // Re-acquire exclusively: upgrade.
    EXPECT_TRUE(locks.acquire(1, 10, LockMode::Exclusive));
    EXPECT_EQ(locks.modeOf(1, 10), LockMode::Exclusive);
    EXPECT_EQ(locks.lockCount(1), 1u);

    locks.release(1, 10);
    EXPECT_FALSE(locks.holds(1, 10));
}

TEST(LockManager, ReleaseAllClearsEverything)
{
    Fixture fx;
    LockManager locks(fx.ctx);
    for (PageId p = 0; p < 5; ++p)
        locks.acquire(7, p, LockMode::Shared);
    locks.acquire(8, 2, LockMode::Shared);
    EXPECT_EQ(locks.lockCount(7), 5u);

    locks.releaseAll(7);
    EXPECT_EQ(locks.lockCount(7), 0u);
    for (PageId p = 0; p < 5; ++p)
        EXPECT_FALSE(locks.holds(7, p));
    EXPECT_TRUE(locks.holds(8, 2)); // untouched
}

TEST(Wal, AppendsMonotonicLsns)
{
    Fixture fx;
    WriteAheadLog log(fx.ctx);
    const Lsn a = log.append(1, LogRecordType::Begin);
    const Lsn b = log.append(1, LogRecordType::Insert, 4, 2);
    EXPECT_LT(a, b);
    EXPECT_EQ(log.records().size(), 2u);
    EXPECT_EQ(log.records()[1].page, 4u);
    EXPECT_EQ(log.records()[1].slot, 2u);

    EXPECT_EQ(log.durableLsn(), 0u);
    log.force(b);
    EXPECT_EQ(log.durableLsn(), b);
}

TEST(Txn, CommitForcesLogAndReleasesLocks)
{
    Fixture fx;
    LockManager locks(fx.ctx);
    WriteAheadLog log(fx.ctx);
    TransactionManager txns(fx.ctx, locks, log);

    const TxnId t = txns.begin();
    EXPECT_EQ(txns.active(), 1u);
    locks.acquire(t, 3, LockMode::Exclusive);
    const Lsn before = log.durableLsn();

    txns.commit(t);
    EXPECT_EQ(txns.active(), 0u);
    EXPECT_FALSE(locks.holds(t, 3));
    EXPECT_GT(log.durableLsn(), before);
}

TEST(Txn, AbortReleasesLocks)
{
    Fixture fx;
    LockManager locks(fx.ctx);
    WriteAheadLog log(fx.ctx);
    TransactionManager txns(fx.ctx, locks, log);
    const TxnId t = txns.begin();
    locks.acquire(t, 9, LockMode::Shared);
    txns.abort(t);
    EXPECT_FALSE(locks.holds(t, 9));
    EXPECT_EQ(txns.active(), 0u);
}

} // namespace
} // namespace cgp::db
