/**
 * @file
 * Tests for the deterministic JSON value type: construction,
 * accessors, ordering guarantees, serialization stability, parsing,
 * and cross-type numeric equality.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "util/json.hh"

namespace cgp
{
namespace
{

TEST(Json, ScalarTypesAndAccessors)
{
    EXPECT_TRUE(Json().isNull());
    EXPECT_TRUE(Json(nullptr).isNull());
    EXPECT_TRUE(Json(true).asBool());
    EXPECT_EQ(Json(-5).asInt(), -5);
    EXPECT_EQ(Json(std::uint64_t{18446744073709551615ull}).asUint(),
              18446744073709551615ull);
    EXPECT_DOUBLE_EQ(Json(2.5).asDouble(), 2.5);
    EXPECT_EQ(Json("hi").asString(), "hi");
}

TEST(Json, NumbersConvertAcrossAccessors)
{
    EXPECT_EQ(Json(7).asUint(), 7u);
    EXPECT_EQ(Json(7u).asInt(), 7);
    EXPECT_DOUBLE_EQ(Json(7).asDouble(), 7.0);
    EXPECT_THROW(Json(-1).asUint(), std::runtime_error);
    EXPECT_THROW(Json("x").asInt(), std::runtime_error);
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    Json o = Json::object();
    o.set("zebra", 1).set("alpha", 2).set("mid", 3);
    EXPECT_EQ(o.dump(), R"({"zebra":1,"alpha":2,"mid":3})");

    // Replacing a key keeps its position.
    o.set("alpha", 9);
    EXPECT_EQ(o.dump(), R"({"zebra":1,"alpha":9,"mid":3})");
}

TEST(Json, ArrayPushAndIndex)
{
    Json a = Json::array();
    a.push(1);
    a.push("two");
    a.push(Json::object().set("k", 3));
    EXPECT_EQ(a.size(), 3u);
    EXPECT_EQ(a[0].asInt(), 1);
    EXPECT_EQ(a[1].asString(), "two");
    EXPECT_EQ(a[2].at("k").asInt(), 3);
    EXPECT_EQ(a.dump(), R"([1,"two",{"k":3}])");
}

TEST(Json, PrettyPrint)
{
    Json o = Json::object();
    o.set("a", 1);
    o.set("b", Json::array());
    EXPECT_EQ(o.dump(2), "{\n  \"a\": 1,\n  \"b\": []\n}");
}

TEST(Json, DumpIsByteStableAcrossRoundTrips)
{
    Json o = Json::object();
    o.set("int", -3)
        .set("uint", std::uint64_t{1234567890123ull})
        .set("dbl", 0.125)
        .set("whole", 3.0)
        .set("str", "a\"b\\c\n\t\x01");
    const std::string once = o.dump();
    const std::string twice = Json::parse(once).dump();
    EXPECT_EQ(once, twice);
    EXPECT_EQ(twice, Json::parse(twice).dump());
}

TEST(Json, ParseBasics)
{
    const Json v = Json::parse(
        R"({"a": [1, -2, 3.5, true, false, null], "b": {"c": "d"}})");
    EXPECT_EQ(v.at("a").size(), 6u);
    EXPECT_EQ(v.at("a")[1].asInt(), -2);
    EXPECT_DOUBLE_EQ(v.at("a")[2].asDouble(), 3.5);
    EXPECT_TRUE(v.at("a")[5].isNull());
    EXPECT_EQ(v.at("b").at("c").asString(), "d");
    EXPECT_FALSE(v.contains("missing"));
    EXPECT_THROW(v.at("missing"), std::runtime_error);
}

TEST(Json, ParseStringEscapes)
{
    const Json v = Json::parse(R"("line\nquote\"uAé")");
    EXPECT_EQ(v.asString(), "line\nquote\"uA\xc3\xa9");

    // Surrogate pair: U+1F600.
    EXPECT_EQ(Json::parse(R"("😀")").asString(),
              "\xf0\x9f\x98\x80");
}

TEST(Json, ParseRejectsGarbage)
{
    EXPECT_THROW(Json::parse(""), std::runtime_error);
    EXPECT_THROW(Json::parse("{"), std::runtime_error);
    EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
    EXPECT_THROW(Json::parse("{\"a\":1,}"), std::runtime_error);
    EXPECT_THROW(Json::parse("1 2"), std::runtime_error);
    EXPECT_THROW(Json::parse("nul"), std::runtime_error);
    EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
}

TEST(Json, EqualityComparesNumbersByValue)
{
    EXPECT_EQ(Json(7), Json(7u));
    EXPECT_EQ(Json(7), Json(7.0));
    EXPECT_NE(Json(7), Json(8));
    EXPECT_NE(Json(-1), Json(18446744073709551615ull));

    Json a = Json::object();
    a.set("x", 1).set("y", 2);
    Json b = Json::object();
    b.set("x", 1).set("y", 2);
    EXPECT_EQ(a, b);
    b.set("y", 3);
    EXPECT_NE(a, b);
}

TEST(Json, LargeIntegersSurviveRoundTrip)
{
    const std::uint64_t big = 18446744073709551615ull;
    const std::int64_t neg = INT64_MIN;
    Json o = Json::object();
    o.set("big", big).set("neg", neg);
    const Json back = Json::parse(o.dump());
    EXPECT_EQ(back.at("big").asUint(), big);
    EXPECT_EQ(back.at("neg").asInt(), neg);
}

} // namespace
} // namespace cgp
