/**
 * @file
 * Tests for the instruction expander: structural invariants of the
 * emitted stream, layout independence of the dynamic behaviour, and
 * the control-flow bookkeeping CGP depends on (call/return pairing,
 * function identity, return targets).
 */

#include <gtest/gtest.h>

#include <vector>

#include "codegen/layout.hh"
#include "trace/expand.hh"
#include "trace/recorder.hh"

namespace cgp
{
namespace
{

struct StreamFixture
{
    FunctionRegistry reg;
    TraceBuffer trace;
    FunctionId a, b, c;

    StreamFixture()
    {
        a = reg.declare("A", FunctionTraits::medium());
        b = reg.declare("B", FunctionTraits::small());
        c = reg.declare("C", FunctionTraits::tiny());

        TraceRecorder rec(trace);
        rec.call(a);
        for (int i = 0; i < 20; ++i) {
            rec.work(40);
            rec.call(b);
            rec.work(25);
            rec.loadAt(0x1000'0000 + i * 64);
            rec.call(c);
            rec.work(8);
            rec.ret();
            rec.branch(i % 3 == 0);
            rec.ret();
            rec.storeAt(0x1000'4000 + i * 32);
        }
        rec.ret();
    }
};

std::vector<DynInst>
expandAll(const FunctionRegistry &reg, const CodeImage &image,
          const TraceBuffer &trace, ExecutionProfile *profile = nullptr)
{
    InstructionExpander ex(reg, image, trace);
    if (profile != nullptr)
        ex.setProfile(profile);
    std::vector<DynInst> out;
    DynInst inst;
    while (ex.next(inst))
        out.push_back(inst);
    return out;
}

TEST(Expander, EmitsBalancedCallsAndReturns)
{
    StreamFixture s;
    LayoutBuilder builder(s.reg);
    const auto stream =
        expandAll(s.reg, builder.buildOriginal(), s.trace);

    int depth = 0;
    std::uint64_t calls = 0, rets = 0;
    for (const auto &inst : stream) {
        if (inst.kind == InstKind::Call) {
            ++depth;
            ++calls;
        } else if (inst.kind == InstKind::Return) {
            --depth;
            ++rets;
        }
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(calls, rets);
    EXPECT_EQ(calls, 41u); // 1 root + 20 * (B + C)
}

TEST(Expander, PcsStayInsideTheOwningFunction)
{
    StreamFixture s;
    LayoutBuilder builder(s.reg);
    const CodeImage image = builder.buildOriginal();
    const auto stream = expandAll(s.reg, image, s.trace);

    for (const auto &inst : stream) {
        if (inst.func == invalidFunctionId)
            continue; // root call site
        const Function &f = s.reg.function(inst.func);
        // The pc must land inside one of the function's blocks.
        bool inside = false;
        for (std::uint16_t b = 0;
             b < static_cast<std::uint16_t>(f.blocks.size()); ++b) {
            const Addr base = image.blockAddr(inst.func, b);
            if (inst.pc >= base &&
                inst.pc < base + f.blocks[b].sizeBytes()) {
                inside = true;
                break;
            }
        }
        EXPECT_TRUE(inside) << "pc outside function body";
        EXPECT_EQ(inst.funcStart, image.funcStart(inst.func));
    }
}

TEST(Expander, CallsCarryCalleeIdentity)
{
    StreamFixture s;
    LayoutBuilder builder(s.reg);
    const CodeImage image = builder.buildOriginal();
    const auto stream = expandAll(s.reg, image, s.trace);

    for (const auto &inst : stream) {
        if (inst.kind != InstKind::Call)
            continue;
        ASSERT_NE(inst.otherFunc, invalidFunctionId);
        EXPECT_EQ(inst.target, image.funcStart(inst.otherFunc));
        EXPECT_EQ(inst.otherFuncStart, inst.target);
        EXPECT_TRUE(inst.taken);
    }
}

TEST(Expander, ReturnsTargetTheCallerResumePoint)
{
    StreamFixture s;
    LayoutBuilder builder(s.reg);
    const CodeImage image = builder.buildOriginal();
    const auto stream = expandAll(s.reg, image, s.trace);

    // After each return into a traced function, the next emitted
    // instruction must be at the return's target.
    for (std::size_t i = 0; i + 1 < stream.size(); ++i) {
        const auto &inst = stream[i];
        if (inst.kind != InstKind::Return)
            continue;
        if (inst.otherFunc == invalidFunctionId)
            continue; // root return
        EXPECT_EQ(stream[i + 1].pc, inst.target);
        EXPECT_EQ(stream[i + 1].func, inst.otherFunc);
        EXPECT_EQ(inst.otherFuncStart,
                  image.funcStart(inst.otherFunc));
    }
}

TEST(Expander, TakenControlFlowIsConsistent)
{
    StreamFixture s;
    LayoutBuilder builder(s.reg);
    const CodeImage image = builder.buildOriginal();
    const auto stream = expandAll(s.reg, image, s.trace);

    for (std::size_t i = 0; i + 1 < stream.size(); ++i) {
        const auto &inst = stream[i];
        if (inst.kind == InstKind::Jump) {
            EXPECT_TRUE(inst.taken);
            EXPECT_EQ(stream[i + 1].pc, inst.target);
        } else if (inst.kind == InstKind::CondBranch && inst.taken) {
            EXPECT_EQ(stream[i + 1].pc, inst.target);
        } else if (inst.kind == InstKind::CondBranch) {
            // Not taken: fall through.
            EXPECT_EQ(stream[i + 1].pc, inst.pc + instrBytes);
        }
    }
}

TEST(Expander, SameDynamicsUnderBothLayouts)
{
    StreamFixture s;
    LayoutBuilder builder(s.reg);
    ExecutionProfile profile;
    const auto o5 = expandAll(s.reg, builder.buildOriginal(), s.trace,
                              &profile);
    const auto om = expandAll(
        s.reg, builder.buildPettisHansen(profile), s.trace);

    auto count = [](const std::vector<DynInst> &v, InstKind k) {
        std::size_t n = 0;
        for (const auto &i : v)
            n += i.kind == k ? 1 : 0;
        return n;
    };
    // Calls, returns, branches, loads and stores are layout
    // independent; only Jump counts differ (layout adjacency).
    EXPECT_EQ(count(o5, InstKind::Call), count(om, InstKind::Call));
    EXPECT_EQ(count(o5, InstKind::Return),
              count(om, InstKind::Return));
    EXPECT_EQ(count(o5, InstKind::CondBranch),
              count(om, InstKind::CondBranch));
    EXPECT_EQ(count(o5, InstKind::Load) + count(o5, InstKind::Store),
              count(om, InstKind::Load) + count(om, InstKind::Store));
    // The OM layout straightens the walk: fewer jumps.
    EXPECT_LE(count(om, InstKind::Jump), count(o5, InstKind::Jump));
}

TEST(Expander, InstrScaleShrinksWork)
{
    StreamFixture s;
    LayoutBuilder builder(s.reg);
    const CodeImage image = builder.buildOriginal();

    InstructionExpander full(s.reg, image, s.trace);
    ExpanderConfig scaled_cfg;
    scaled_cfg.instrScale = 0.88;
    InstructionExpander scaled(s.reg, image, s.trace, scaled_cfg);

    DynInst inst;
    while (full.next(inst)) {
    }
    while (scaled.next(inst)) {
    }
    EXPECT_LT(scaled.emittedInstrs(), full.emittedInstrs());
    // Work dominates this trace, so the ratio lands near 0.88.
    const double ratio =
        static_cast<double>(scaled.emittedInstrs()) /
        static_cast<double>(full.emittedInstrs());
    EXPECT_NEAR(ratio, 0.88, 0.05);
}

TEST(Expander, DeterministicAcrossRuns)
{
    StreamFixture s;
    LayoutBuilder builder(s.reg);
    const CodeImage image = builder.buildOriginal();
    const auto one = expandAll(s.reg, image, s.trace);
    const auto two = expandAll(s.reg, image, s.trace);
    ASSERT_EQ(one.size(), two.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        EXPECT_EQ(one[i].pc, two[i].pc);
        EXPECT_EQ(one[i].kind, two[i].kind);
    }
}

TEST(Expander, StatsAccounting)
{
    StreamFixture s;
    LayoutBuilder builder(s.reg);
    const CodeImage image = builder.buildOriginal();
    InstructionExpander ex(s.reg, image, s.trace);
    DynInst inst;
    std::uint64_t n = 0;
    while (ex.next(inst))
        ++n;
    EXPECT_EQ(ex.emittedInstrs(), n);
    EXPECT_EQ(ex.emittedCalls(), 41u);
    EXPECT_GT(ex.emittedLoads(), 0u);
    EXPECT_GT(ex.emittedStores(), 0u);
    EXPECT_GT(ex.instrsPerCall(), 1.0);
}

TEST(Expander, ContextSwitchesKeepPerThreadStacks)
{
    FunctionRegistry reg;
    const auto a = reg.declare("A", FunctionTraits::medium());
    const auto b = reg.declare("B", FunctionTraits::medium());

    // Hand-build a two-thread interleaving that switches while
    // thread 0 is two frames deep.
    TraceBuffer trace;
    trace.append(TraceEvent::make(EventKind::Switch, 0));
    trace.append(TraceEvent::make(EventKind::Call, a));
    trace.append(TraceEvent::make(EventKind::Work, 10));
    trace.append(TraceEvent::make(EventKind::Call, b));
    trace.append(TraceEvent::make(EventKind::Work, 5));
    trace.append(TraceEvent::make(EventKind::Switch, 1));
    trace.append(TraceEvent::make(EventKind::Call, b));
    trace.append(TraceEvent::make(EventKind::Work, 7));
    trace.append(TraceEvent::make(EventKind::Return, 0));
    trace.append(TraceEvent::make(EventKind::Switch, 0));
    trace.append(TraceEvent::make(EventKind::Work, 5));
    trace.append(TraceEvent::make(EventKind::Return, 0));
    trace.append(TraceEvent::make(EventKind::Return, 0));

    LayoutBuilder builder(reg);
    const CodeImage image = builder.buildOriginal();
    InstructionExpander ex(reg, image, trace);
    std::vector<DynInst> stream;
    DynInst inst;
    while (ex.next(inst))
        stream.push_back(inst);

    // Thread 0's final returns unwind B then A.
    std::vector<FunctionId> returns;
    for (const auto &i : stream) {
        if (i.kind == InstKind::Return)
            returns.push_back(i.func);
    }
    ASSERT_EQ(returns.size(), 3u);
    EXPECT_EQ(returns[0], b); // thread 1's B
    EXPECT_EQ(returns[1], b); // thread 0's B
    EXPECT_EQ(returns[2], a); // thread 0's A
}

} // namespace
} // namespace cgp
