/**
 * @file
 * Tests for the prefetchers: next-N-line, run-ahead NL, and the
 * assembled CGP prefetcher driving real prefetches into an L1-I.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "prefetch/cgp.hh"
#include "prefetch/nextline.hh"
#include "prefetch/prefetcher.hh"

namespace cgp
{
namespace
{

CacheConfig
l1iConfig()
{
    CacheConfig c;
    c.name = "l1i";
    c.sizeBytes = 32 * 1024;
    c.assoc = 2;
    c.lineBytes = 32;
    c.hitLatency = 1;
    return c;
}

TEST(NextNLine, PrefetchesExactlyNLinesAhead)
{
    Cache l1i(l1iConfig(), nullptr, nullptr);
    NextNLinePrefetcher nl(l1i, 4);
    nl.onFetchLine(0x400000, 1);
    EXPECT_EQ(l1i.prefetchesIssued(AccessSource::PrefetchNL), 4u);
    l1i.tick(1000);
    for (Addr a = 0x400020; a <= 0x400080; a += 0x20) {
        EXPECT_TRUE(l1i.access(a, 1000, AccessSource::DemandFetch,
                               false)
                        .hit)
            << "line " << std::hex << a;
    }
    // The trigger line itself was not prefetched.
    EXPECT_FALSE(
        l1i.access(0x400000, 1001, AccessSource::DemandFetch, false)
            .hit);
}

TEST(NextNLine, SquashesResidentLines)
{
    Cache l1i(l1iConfig(), nullptr, nullptr);
    NextNLinePrefetcher nl(l1i, 2);
    nl.onFetchLine(0x400000, 1);
    l1i.tick(1000);
    nl.onFetchLine(0x400000, 1000); // both targets resident now
    EXPECT_EQ(l1i.prefetchesIssued(AccessSource::PrefetchNL), 2u);
    EXPECT_EQ(l1i.squashedPrefetches(), 2u);
}

TEST(RunAheadNL, SkipsAheadByM)
{
    Cache l1i(l1iConfig(), nullptr, nullptr);
    RunAheadNLPrefetcher ra(l1i, 2, 4);
    ra.onFetchLine(0x400000, 1);
    l1i.tick(1000);
    // Lines +5 and +6 prefetched; +1..+4 not.
    EXPECT_FALSE(
        l1i.access(0x400020, 1000, AccessSource::DemandFetch, false)
            .hit);
    EXPECT_TRUE(
        l1i.access(0x4000A0, 1000, AccessSource::DemandFetch, false)
            .hit);
    EXPECT_TRUE(
        l1i.access(0x4000C0, 1001, AccessSource::DemandFetch, false)
            .hit);
}

TEST(Cgp, EmbeddedNLCoversSequentialFetch)
{
    Cache l1i(l1iConfig(), nullptr, nullptr);
    CgpPrefetcher cgp(l1i, CghcConfig::twoLevel2K32K(), 4);
    cgp.onFetchLine(0x400000, 1);
    EXPECT_EQ(l1i.prefetchesIssued(AccessSource::PrefetchNL), 4u);
    EXPECT_EQ(l1i.prefetchesIssued(AccessSource::PrefetchCGHC), 0u);
}

TEST(Cgp, PrefetchesLearnedCalleeOnReentry)
{
    Cache l1i(l1iConfig(), nullptr, nullptr);
    CgpPrefetcher cgp(l1i, CghcConfig::twoLevel2K32K(), 2);

    const Addr F = 0x400000, G = 0x404100;

    // First invocation: F (entered from root) calls G.
    cgp.onCall(F, invalidAddr, 1);   // root -> F
    cgp.onCall(G, F, 10);            // F -> G (records G in F's entry)
    cgp.onReturn(F, G, 20);          // G -> F
    cgp.onReturn(invalidAddr, F, 30);

    ASSERT_EQ(l1i.prefetchesIssued(AccessSource::PrefetchCGHC), 0u);

    // Second invocation: entering F prefetches the first 2 lines
    // of G (the learned first callee).
    cgp.onCall(F, invalidAddr, 100);
    EXPECT_EQ(l1i.prefetchesIssued(AccessSource::PrefetchCGHC), 2u);
    l1i.tick(1000);
    EXPECT_TRUE(
        l1i.access(G, 1000, AccessSource::DemandFetch, false).hit);
    EXPECT_TRUE(l1i.access(G + 0x20, 1000,
                           AccessSource::DemandFetch, false)
                    .hit);
    // Only the first N lines of the callee are prefetched (CGP_N).
    EXPECT_FALSE(l1i.access(G + 0x40, 1001,
                            AccessSource::DemandFetch, false)
                     .hit);
}

TEST(Cgp, ReturnPrefetchesNextCalleeInSequence)
{
    Cache l1i(l1iConfig(), nullptr, nullptr);
    CgpPrefetcher cgp(l1i, CghcConfig::twoLevel2K32K(), 1);

    const Addr F = 0x400000, G = 0x404100, H = 0x408200;

    // Invocation 1: F calls G then H.
    cgp.onCall(F, invalidAddr, 1);
    cgp.onCall(G, F, 10);
    cgp.onReturn(F, G, 20);
    cgp.onCall(H, F, 30);
    cgp.onReturn(F, H, 40);
    cgp.onReturn(invalidAddr, F, 50);

    // Invocation 2: after G returns, the CGHC access keyed by F's
    // start (from the modified RAS) prefetches H.
    cgp.onCall(F, invalidAddr, 100);     // prefetches G
    cgp.onCall(G, F, 110);
    const auto before =
        l1i.prefetchesIssued(AccessSource::PrefetchCGHC);
    cgp.onReturn(F, G, 120);             // should prefetch H
    EXPECT_EQ(l1i.prefetchesIssued(AccessSource::PrefetchCGHC),
              before + 1);
    l1i.tick(2000);
    EXPECT_TRUE(
        l1i.access(H, 2000, AccessSource::DemandFetch, false).hit);
}

TEST(Cgp, InvalidAddressesAreIgnored)
{
    Cache l1i(l1iConfig(), nullptr, nullptr);
    CgpPrefetcher cgp(l1i, CghcConfig::twoLevel2K32K(), 4);
    cgp.onCall(invalidAddr, invalidAddr, 1);
    cgp.onReturn(invalidAddr, invalidAddr, 2);
    EXPECT_EQ(l1i.prefetchesIssued(AccessSource::PrefetchCGHC), 0u);
    EXPECT_EQ(cgp.cghc().accesses(), 0u);
}

TEST(Cgp, NamesAndDepths)
{
    Cache l1i(l1iConfig(), nullptr, nullptr);
    CgpPrefetcher cgp(l1i, CghcConfig::twoLevel2K32K(), 4);
    NextNLinePrefetcher nl(l1i, 2);
    RunAheadNLPrefetcher ra(l1i, 2, 4);
    NullPrefetcher none;
    EXPECT_STREQ(cgp.name(), "cgp");
    EXPECT_STREQ(nl.name(), "next-n-line");
    EXPECT_STREQ(ra.name(), "runahead-nl");
    EXPECT_STREQ(none.name(), "none");
    EXPECT_EQ(cgp.depth(), 4u);
    EXPECT_EQ(nl.depth(), 2u);
}

} // namespace
} // namespace cgp
