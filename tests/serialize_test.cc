/**
 * @file
 * Trace serialization tests: round trips, corruption detection, and
 * failure injection (truncation, bad magic, flipped bits).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/recorder.hh"
#include "trace/serialize.hh"
#include "util/logging.hh"

namespace cgp
{
namespace
{

TraceBuffer
sampleTrace(unsigned n)
{
    TraceBuffer buf;
    TraceRecorder rec(buf);
    rec.call(1);
    for (unsigned i = 0; i < n; ++i) {
        rec.work(25 + i % 7);
        rec.branch(i % 3 == 0);
        rec.loadAt(0x1000'0000 + i * 8);
        if (i % 5 == 0) {
            rec.call(2);
            rec.work(9);
            rec.ret();
        }
    }
    rec.ret();
    return buf;
}

TEST(Serialize, RoundTripPreservesEverything)
{
    const TraceBuffer original = sampleTrace(200);
    std::stringstream ss;
    ASSERT_TRUE(saveTrace(original, ss));

    TraceBuffer loaded;
    ASSERT_TRUE(loadTrace(loaded, ss));
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i)
        EXPECT_EQ(loaded.at(i).raw(), original.at(i).raw());
    EXPECT_EQ(loaded.approxInstrs(), original.approxInstrs());
    EXPECT_EQ(loaded.calls(), original.calls());
}

TEST(Serialize, EmptyTraceRoundTrips)
{
    TraceBuffer empty, loaded;
    std::stringstream ss;
    ASSERT_TRUE(saveTrace(empty, ss));
    ASSERT_TRUE(loadTrace(loaded, ss));
    EXPECT_TRUE(loaded.empty());
}

TEST(Serialize, RejectsBadMagic)
{
    const TraceBuffer original = sampleTrace(10);
    std::stringstream ss;
    ASSERT_TRUE(saveTrace(original, ss));
    std::string data = ss.str();
    data[0] = static_cast<char>(data[0] ^ 0x1);

    std::stringstream corrupted(data);
    TraceBuffer loaded;
    EXPECT_FALSE(loadTrace(loaded, corrupted));
    EXPECT_TRUE(loaded.empty());
}

TEST(Serialize, RejectsTruncation)
{
    const TraceBuffer original = sampleTrace(50);
    std::stringstream ss;
    ASSERT_TRUE(saveTrace(original, ss));
    const std::string data = ss.str();

    std::stringstream truncated(
        data.substr(0, data.size() / 2));
    TraceBuffer loaded;
    EXPECT_FALSE(loadTrace(loaded, truncated));
    EXPECT_TRUE(loaded.empty());
}

TEST(Serialize, RejectsFlippedEventBit)
{
    const TraceBuffer original = sampleTrace(50);
    std::stringstream ss;
    ASSERT_TRUE(saveTrace(original, ss));
    std::string data = ss.str();
    // Flip one bit in the middle of the event payloads.
    data[data.size() / 2] =
        static_cast<char>(data[data.size() / 2] ^ 0x10);

    std::stringstream corrupted(data);
    TraceBuffer loaded;
    EXPECT_FALSE(loadTrace(loaded, corrupted));
    EXPECT_TRUE(loaded.empty());
}

TEST(Serialize, FileRoundTrip)
{
    const TraceBuffer original = sampleTrace(100);
    const std::string path = "/tmp/cgp_serialize_test.trace";
    ASSERT_TRUE(saveTraceFile(original, path));
    TraceBuffer loaded;
    ASSERT_TRUE(loadTraceFile(loaded, path));
    EXPECT_EQ(loaded.size(), original.size());
    std::remove(path.c_str());
}

TEST(Serialize, MissingFileFails)
{
    TraceBuffer loaded;
    EXPECT_FALSE(
        loadTraceFile(loaded, "/tmp/does-not-exist.cgp.trace"));
}

} // namespace
} // namespace cgp
