/**
 * @file
 * Tests for function synthesis, the registry, execution profiles and
 * the call-graph analyzer.
 */

#include <gtest/gtest.h>

#include <set>

#include "codegen/function.hh"
#include "codegen/profile.hh"
#include "codegen/registry.hh"

namespace cgp
{
namespace
{

TEST(Registry, DeclareIsIdempotent)
{
    FunctionRegistry reg;
    const auto a = reg.declare("foo", FunctionTraits::medium());
    const auto b = reg.declare("foo", FunctionTraits::tiny());
    EXPECT_EQ(a, b);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, LookupFindsDeclared)
{
    FunctionRegistry reg;
    const auto a = reg.declare("foo", FunctionTraits::small());
    EXPECT_EQ(reg.lookup("foo"), a);
    EXPECT_EQ(reg.lookup("bar"), invalidFunctionId);
}

TEST(Registry, BodiesAreNameStable)
{
    // The same name must synthesize the same body regardless of
    // declaration order or registry instance.
    FunctionRegistry r1, r2;
    r1.declare("pad1", FunctionTraits::tiny());
    const auto a = r1.declare("stable", FunctionTraits::medium());
    const auto b = r2.declare("stable", FunctionTraits::medium());

    const Function &fa = r1.function(a);
    const Function &fb = r2.function(b);
    ASSERT_EQ(fa.blocks.size(), fb.blocks.size());
    for (std::size_t i = 0; i < fa.blocks.size(); ++i) {
        EXPECT_EQ(fa.blocks[i].instrs, fb.blocks[i].instrs);
        EXPECT_EQ(fa.blocks[i].role, fb.blocks[i].role);
    }
    EXPECT_EQ(fa.hotWalk, fb.hotWalk);
    EXPECT_EQ(fa.originalOrder, fb.originalOrder);
}

class TraitsTest
    : public ::testing::TestWithParam<FunctionTraits>
{
};

TEST_P(TraitsTest, SynthesisHonorsTraits)
{
    const FunctionTraits traits = GetParam();
    FunctionRegistry reg;
    const auto id = reg.declare("f", traits);
    const Function &f = reg.function(id);

    // Hot walk instruction count matches the requested size.
    EXPECT_EQ(f.hotWalkInstrs(), traits.hotInstrs);

    // One arm block per decision site.
    EXPECT_EQ(f.decisions.size(), traits.decisionSites);
    for (const auto &d : f.decisions)
        EXPECT_EQ(f.blocks[d.arm].role, BlockRole::Arm);

    // Cold budget approximately honored (block-size granularity).
    std::uint32_t cold = 0;
    for (const auto &b : f.blocks) {
        if (b.role == BlockRole::Cold)
            cold += b.instrs;
    }
    const auto budget = static_cast<std::uint32_t>(
        traits.hotInstrs * traits.coldFraction);
    EXPECT_LE(cold, budget);
    EXPECT_GE(cold + 16, budget);

    // The original order is a permutation of all blocks.
    std::set<std::uint16_t> seen(f.originalOrder.begin(),
                                 f.originalOrder.end());
    EXPECT_EQ(seen.size(), f.blocks.size());

    // The entry block leads the original layout.
    ASSERT_FALSE(f.hotWalk.empty());
    EXPECT_EQ(f.originalOrder.front(), f.hotWalk.front());

    // Hot blocks are small (4..12 instructions).
    for (auto h : f.hotWalk) {
        EXPECT_GE(f.blocks[h].instrs, 4);
        EXPECT_LE(f.blocks[h].instrs, 16);
    }

    EXPECT_EQ(f.loops, traits.loops);
    EXPECT_EQ(f.sizeBytes() % instrBytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, TraitsTest,
    ::testing::Values(FunctionTraits::tiny(), FunctionTraits::small(),
                      FunctionTraits::medium(),
                      FunctionTraits::large(),
                      FunctionTraits::huge()));

TEST(Registry, TotalCodeBytesSumsBodies)
{
    FunctionRegistry reg;
    const auto a = reg.declare("a", FunctionTraits::small());
    const auto b = reg.declare("b", FunctionTraits::large());
    EXPECT_EQ(reg.totalCodeBytes(),
              reg.function(a).sizeBytes() +
                  reg.function(b).sizeBytes());
}

TEST(Profile, RecordsAndMerges)
{
    ExecutionProfile p, q;
    p.onCall(0, 1);
    p.onCall(0, 1);
    p.onCall(1, 2);
    p.onEntry(1);
    q.onCall(0, 1);
    q.onDecision(3, 0, true);
    q.onDecision(3, 0, false);
    q.onBlockEdge(1, 0, 2);

    p.merge(q);
    EXPECT_EQ(p.callWeight(0, 1), 3u);
    EXPECT_EQ(p.callWeight(1, 2), 1u);
    EXPECT_EQ(p.callWeight(9, 9), 0u);
    EXPECT_EQ(p.entryCount(1), 1u);
    EXPECT_EQ(p.totalCalls(), 4u);
    EXPECT_NEAR(p.decisionBias(3, 0), 0.5, 1e-9);
    EXPECT_NEAR(p.decisionBias(4, 0), 0.5, 1e-9);
    EXPECT_EQ(p.blockEdges(1).at({0, 2}), 1u);
    EXPECT_TRUE(p.blockEdges(7).empty());
}

TEST(Profile, DistinctCallees)
{
    ExecutionProfile p;
    p.onCall(5, 1);
    p.onCall(5, 2);
    p.onCall(5, 2);
    p.onCall(6, 1);
    EXPECT_EQ(p.distinctCallees(5), 2u);
    EXPECT_EQ(p.distinctCallees(6), 1u);
    EXPECT_EQ(p.distinctCallees(7), 0u);
}

TEST(CallGraphAnalyzer, FractionBelowThreshold)
{
    ExecutionProfile p;
    // Function 0 calls 2 distinct; function 1 calls 9 distinct.
    p.onCall(0, 10);
    p.onCall(0, 11);
    for (FunctionId c = 20; c < 29; ++c)
        p.onCall(1, c);

    CallGraphAnalyzer a(p);
    EXPECT_EQ(a.callerCount(), 2u);
    EXPECT_NEAR(a.fractionWithFewerCalleesThan(8), 0.5, 1e-9);
    EXPECT_EQ(a.maxDistinctCallees(), 9u);
}

TEST(CallGraphAnalyzer, EmptyProfile)
{
    ExecutionProfile p;
    CallGraphAnalyzer a(p);
    EXPECT_EQ(a.callerCount(), 0u);
    EXPECT_EQ(a.maxDistinctCallees(), 0u);
    EXPECT_NEAR(a.fractionWithFewerCalleesThan(8), 1.0, 1e-9);
}

} // namespace
} // namespace cgp
