/**
 * @file
 * Tests for the shared I+D prefetch arbiter (mem/pfarbiter.hh):
 * recent-line filtering, demand-priority deferral and drain, the
 * accuracy gate, per-engine credits, stale-entry disposal, and the
 * per-engine accounting invariants SimResult depends on.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "mem/pfarbiter.hh"
#include "util/rng.hh"

namespace cgp
{
namespace
{

constexpr auto kFetch = AccessSource::DemandFetch;
constexpr auto kLoad = AccessSource::DemandLoad;
constexpr auto kNL = AccessSource::PrefetchNL;
constexpr auto kCGHC = AccessSource::PrefetchCGHC;
constexpr auto kD = AccessSource::DataPrefetch;

HierarchyConfig
arbConfig()
{
    HierarchyConfig cfg;
    cfg.arbiter.enabled = true;
    return cfg;
}

/** Occupy both FIFO-port slots of @p now so wouldDelay(now) holds. */
void
saturatePort(MemoryPort &port, Cycle now)
{
    for (unsigned i = 0; i < MemoryPort::bandwidth; ++i)
        port.request(now);
    ASSERT_TRUE(port.wouldDelay(now));
}

TEST(Arbiter, DisabledByDefault)
{
    MemoryHierarchy mem;
    EXPECT_EQ(mem.arbiter(), nullptr);
    // Without an arbiter the legacy squash path is untouched.
    EXPECT_TRUE(mem.l1i().prefetch(0x2000, 1, kNL));
    EXPECT_FALSE(mem.l1i().prefetch(0x2000, 2, kNL));
    EXPECT_EQ(mem.l1i().squashedPrefetches(), 1u);
}

TEST(Arbiter, AdmitsOnFreePortAndCounts)
{
    MemoryHierarchy mem(arbConfig());
    ASSERT_NE(mem.arbiter(), nullptr);
    EXPECT_TRUE(mem.l1i().prefetch(0x2000, 1, kNL));
    EXPECT_EQ(mem.arbiter()->issued(kNL), 1u);
    EXPECT_EQ(mem.l1i().prefetchesIssued(kNL), 1u);
    EXPECT_EQ(mem.arbiter()->deferred(kNL), 0u);
    EXPECT_EQ(mem.arbiter()->dropped(kNL), 0u);
}

TEST(Arbiter, FilterDropsRecentSameLineRequest)
{
    MemoryHierarchy mem(arbConfig());
    EXPECT_TRUE(mem.l1i().prefetch(0x2000, 1, kNL));
    // Same engine, same line, moments later: killed by the filter
    // before the presence check — no squash is charged.
    EXPECT_FALSE(mem.l1i().prefetch(0x2000, 2, kNL));
    EXPECT_EQ(mem.arbiter()->dropped(kNL), 1u);
    EXPECT_EQ(mem.l1i().squashedPrefetches(), 0u);

    // The filter is per-engine: the other I-side engine passes it
    // and reaches the presence check (squashed: fill in flight).
    EXPECT_FALSE(mem.l1i().prefetch(0x2000, 3, kCGHC));
    EXPECT_EQ(mem.arbiter()->dropped(kCGHC), 0u);
    EXPECT_EQ(mem.l1i().squashedPrefetches(), 1u);
}

TEST(Arbiter, FilterEntriesExpire)
{
    HierarchyConfig cfg = arbConfig();
    cfg.arbiter.filterWindow = 16;
    MemoryHierarchy mem(cfg);
    EXPECT_TRUE(mem.l1i().prefetch(0x2000, 1, kNL));
    // Past the window the filter forgets; the request reaches the
    // cache again (and squashes on the still-inflight fill).
    EXPECT_FALSE(mem.l1i().prefetch(0x2000, 18, kNL));
    EXPECT_EQ(mem.arbiter()->dropped(kNL), 0u);
    EXPECT_EQ(mem.l1i().squashedPrefetches(), 1u);
}

TEST(Arbiter, DefersWhenPortBusyThenDrainIssues)
{
    MemoryHierarchy mem(arbConfig());
    saturatePort(mem.port(), 5);

    EXPECT_FALSE(mem.l1i().prefetch(0x2000, 5, kNL));
    EXPECT_EQ(mem.arbiter()->deferred(kNL), 1u);
    EXPECT_EQ(mem.arbiter()->queueSize(), 1u);
    EXPECT_EQ(mem.l1i().prefetchesIssued(kNL), 0u);

    // Port still saturated this cycle: the entry keeps waiting.
    mem.drainDeferred(5);
    EXPECT_EQ(mem.arbiter()->queueSize(), 1u);

    // Next cycle a slot is free: the deferred prefetch issues.
    mem.drainDeferred(6);
    EXPECT_EQ(mem.arbiter()->queueSize(), 0u);
    EXPECT_EQ(mem.arbiter()->issued(kNL), 1u);
    EXPECT_EQ(mem.l1i().prefetchesIssued(kNL), 1u);
}

TEST(Arbiter, QueuedLineMergesLaterRequests)
{
    MemoryHierarchy mem(arbConfig());
    saturatePort(mem.port(), 5);
    EXPECT_FALSE(mem.l1i().prefetch(0x2000, 5, kNL));
    // The other engine asks for the very line already waiting: merge
    // instead of queueing a second copy.
    EXPECT_FALSE(mem.l1i().prefetch(0x2000, 5, kCGHC));
    EXPECT_EQ(mem.arbiter()->duplicateMerged(kCGHC), 1u);
    EXPECT_EQ(mem.arbiter()->queueSize(), 1u);
}

TEST(Arbiter, CreditsBoundPerEngineQueueUse)
{
    HierarchyConfig cfg = arbConfig();
    cfg.arbiter.creditsPerEngine = 2;
    MemoryHierarchy mem(cfg);
    saturatePort(mem.port(), 5);

    EXPECT_FALSE(mem.l1i().prefetch(0x2000, 5, kNL));
    EXPECT_FALSE(mem.l1i().prefetch(0x2040, 5, kNL));
    EXPECT_EQ(mem.arbiter()->deferred(kNL), 2u);
    // Credits exhausted: the third distinct line is dropped...
    EXPECT_FALSE(mem.l1i().prefetch(0x2080, 5, kNL));
    EXPECT_EQ(mem.arbiter()->dropped(kNL), 1u);
    // ...but the other side still has credits of its own.
    EXPECT_FALSE(mem.l1d().prefetch(0x8000, 5, kD));
    EXPECT_EQ(mem.arbiter()->deferred(kD), 1u);
    EXPECT_EQ(mem.arbiter()->queueSize(), 3u);
}

TEST(Arbiter, QueueDepthBoundsTotalBacklog)
{
    HierarchyConfig cfg = arbConfig();
    cfg.arbiter.queueDepth = 2;
    cfg.arbiter.creditsPerEngine = 8;
    MemoryHierarchy mem(cfg);
    saturatePort(mem.port(), 5);

    EXPECT_FALSE(mem.l1i().prefetch(0x2000, 5, kNL));
    EXPECT_FALSE(mem.l1i().prefetch(0x2040, 5, kNL));
    EXPECT_FALSE(mem.l1d().prefetch(0x8000, 5, kD));
    EXPECT_EQ(mem.arbiter()->queueSize(), 2u);
    EXPECT_EQ(mem.arbiter()->dropped(kD), 1u);
}

TEST(Arbiter, StaleDeferredEntriesAreDropped)
{
    HierarchyConfig cfg = arbConfig();
    cfg.arbiter.maxDeferCycles = 10;
    MemoryHierarchy mem(cfg);
    saturatePort(mem.port(), 5);
    EXPECT_FALSE(mem.l1i().prefetch(0x2000, 5, kNL));

    // Far past its sell-by date: discarded, never issued.
    mem.drainDeferred(100);
    EXPECT_EQ(mem.arbiter()->queueSize(), 0u);
    EXPECT_EQ(mem.arbiter()->issued(kNL), 0u);
    EXPECT_EQ(mem.arbiter()->dropped(kNL), 1u);
}

TEST(Arbiter, DrainMergesLinesCoveredWhileWaiting)
{
    MemoryHierarchy mem(arbConfig());
    saturatePort(mem.port(), 5);
    EXPECT_FALSE(mem.l1i().prefetch(0x2000, 5, kNL));
    // A demand miss for the same line starts a fill while the
    // prefetch waits in the queue.
    mem.l1i().access(0x2000, 6, kFetch, false);
    mem.drainDeferred(7);
    EXPECT_EQ(mem.arbiter()->issued(kNL), 0u);
    EXPECT_EQ(mem.arbiter()->duplicateMerged(kNL), 1u);
}

TEST(Arbiter, AccuracyGateThrottlesInaccurateEngine)
{
    HierarchyConfig cfg = arbConfig();
    cfg.arbiter.minSamples = 4;
    cfg.arbiter.accuracyWindow = 64;
    cfg.arbiter.probePeriod = 4;
    MemoryHierarchy mem(cfg);
    PrefetchArbiter &arb = *mem.arbiter();

    // Cold engines are presumed accurate.
    EXPECT_DOUBLE_EQ(arb.windowAccuracy(kNL), 1.0);
    EXPECT_FALSE(arb.gated(kNL));

    for (int i = 0; i < 8; ++i)
        arb.recordOutcome(kNL, false);
    EXPECT_TRUE(arb.gated(kNL));
    // Feedback never leaks across engines.
    EXPECT_FALSE(arb.gated(kCGHC));
    EXPECT_FALSE(arb.gated(kD));

    // A gated engine still gets one probe in probePeriod requests.
    unsigned admitted = 0;
    Cycle now = 1;
    for (int i = 0; i < 8; ++i) {
        if (mem.l1i().prefetch(0x10000 + i * 64, now, kNL))
            ++admitted;
        ++now;
        mem.tick(now);
    }
    EXPECT_EQ(admitted, 2u);
    EXPECT_EQ(arb.dropped(kNL), 6u);

    // Useful probes re-train the window and lift the gate.
    for (int i = 0; i < 32; ++i)
        arb.recordOutcome(kNL, true);
    EXPECT_FALSE(arb.gated(kNL));
}

TEST(Arbiter, SlidingWindowForgetsOldOutcomes)
{
    HierarchyConfig cfg = arbConfig();
    cfg.arbiter.minSamples = 4;
    cfg.arbiter.accuracyWindow = 16;
    MemoryHierarchy mem(cfg);
    PrefetchArbiter &arb = *mem.arbiter();

    // A long useless streak gates the engine...
    for (int i = 0; i < 16; ++i)
        arb.recordOutcome(kD, false);
    EXPECT_TRUE(arb.gated(kD));
    // ...but a recent accurate phase dominates after aging.
    for (int i = 0; i < 24; ++i)
        arb.recordOutcome(kD, true);
    EXPECT_FALSE(arb.gated(kD));
    EXPECT_GT(arb.windowAccuracy(kD), 0.5);
}

TEST(Arbiter, FinalizeDropsQueuedOnceOnly)
{
    MemoryHierarchy mem(arbConfig());
    saturatePort(mem.port(), 5);
    EXPECT_FALSE(mem.l1i().prefetch(0x2000, 5, kNL));
    EXPECT_EQ(mem.arbiter()->queueSize(), 1u);

    mem.finalize();
    EXPECT_EQ(mem.arbiter()->queueSize(), 0u);
    EXPECT_EQ(mem.arbiter()->dropped(kNL), 1u);

    // Hierarchy finalize is idempotent: nothing double-accounts.
    mem.finalize();
    EXPECT_EQ(mem.arbiter()->dropped(kNL), 1u);
}

TEST(Arbiter, RandomStreamAccountingInvariants)
{
    HierarchyConfig cfg = arbConfig();
    cfg.arbiter.filterWindow = 32;
    MemoryHierarchy mem(cfg);
    const PrefetchArbiter &arb = *mem.arbiter();

    Rng rng(7);
    Cycle now = 1;
    std::uint64_t requests[3] = {0, 0, 0};
    const AccessSource srcs[3] = {kNL, kCGHC, kD};
    for (int i = 0; i < 20000; ++i) {
        ++now;
        mem.tick(now);
        const Addr a = 0x400000 + (rng.next() & 0xffff);
        const unsigned which =
            static_cast<unsigned>(rng.next() % 4);
        if (which == 3) {
            mem.l1d().access(a, now, kLoad, false);
        } else {
            Cache &c = which == 2 ? mem.l1d() : mem.l1i();
            c.prefetch(a, now, srcs[which]);
            ++requests[which];
        }
        mem.drainDeferred(now);
    }
    mem.finalize();
    EXPECT_EQ(arb.queueSize(), 0u);

    for (int k = 0; k < 3; ++k) {
        const AccessSource s = srcs[k];
        const Cache &c = k == 2 ? mem.l1d() : mem.l1i();
        // The arbiter's issue count is exactly what the cache issued
        // on this engine's behalf.
        EXPECT_EQ(arb.issued(s), c.prefetchesIssued(s));
        // Every issued prefetch is classified exactly once.
        EXPECT_EQ(c.prefetchesIssued(s),
                  c.prefHits(s) + c.delayedHits(s) + c.useless(s));
    }
    // Every request the engines made is accounted exactly once:
    // issued, dropped, merged, or squashed on the presence check.
    EXPECT_EQ(arb.issued(kNL) + arb.dropped(kNL) +
                  arb.duplicateMerged(kNL) + arb.issued(kCGHC) +
                  arb.dropped(kCGHC) + arb.duplicateMerged(kCGHC) +
                  mem.l1i().squashedPrefetches(),
              requests[0] + requests[1]);
    EXPECT_EQ(arb.issued(kD) + arb.dropped(kD) +
                  arb.duplicateMerged(kD) +
                  mem.l1d().squashedPrefetches(),
              requests[2]);
}

} // namespace
} // namespace cgp
