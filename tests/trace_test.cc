/**
 * @file
 * Tests for trace events, the recorder, and the interleaver.
 */

#include <gtest/gtest.h>

#include <map>

#include "trace/events.hh"
#include "trace/interleave.hh"
#include "trace/recorder.hh"

namespace cgp
{
namespace
{

TEST(TraceEvent, PackUnpackRoundTrip)
{
    const EventKind kinds[] = {EventKind::Call, EventKind::Return,
                               EventKind::Work, EventKind::Branch,
                               EventKind::Load, EventKind::Store,
                               EventKind::Switch};
    const std::uint64_t payloads[] = {0, 1, 42, 0xdeadbeef,
                                      TraceEvent::payloadMask};
    for (auto k : kinds) {
        for (auto p : payloads) {
            const TraceEvent e = TraceEvent::make(k, p);
            EXPECT_EQ(e.kind(), k);
            EXPECT_EQ(e.payload(), p);
            const TraceEvent r = TraceEvent::fromRaw(e.raw());
            EXPECT_EQ(r.kind(), k);
            EXPECT_EQ(r.payload(), p);
        }
    }
}

TEST(TraceBuffer, CountsApproxInstrsAndCalls)
{
    TraceBuffer buf;
    buf.append(TraceEvent::make(EventKind::Call, 3));
    buf.append(TraceEvent::make(EventKind::Work, 100));
    buf.append(TraceEvent::make(EventKind::Branch, 1));
    buf.append(TraceEvent::make(EventKind::Return, 0));
    EXPECT_EQ(buf.size(), 4u);
    EXPECT_EQ(buf.calls(), 1u);
    // call=1 + work=100 + branch=1 + return=1
    EXPECT_EQ(buf.approxInstrs(), 103u);

    buf.clear();
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.approxInstrs(), 0u);
}

TEST(Recorder, ScopeBalancesCallsAndReturns)
{
    TraceBuffer buf;
    TraceRecorder rec(buf);
    {
        TraceScope outer(rec, 1);
        EXPECT_EQ(rec.depth(), 1u);
        outer.work(10);
        {
            TraceScope inner(rec, 2);
            EXPECT_EQ(rec.depth(), 2u);
            inner.branch(true);
        }
        EXPECT_EQ(rec.depth(), 1u);
    }
    EXPECT_EQ(rec.depth(), 0u);

    // Sequence: Call(1) Work Call(2) Branch Return Return.
    ASSERT_EQ(buf.size(), 6u);
    EXPECT_EQ(buf.at(0).kind(), EventKind::Call);
    EXPECT_EQ(buf.at(0).payload(), 1u);
    EXPECT_EQ(buf.at(1).kind(), EventKind::Work);
    EXPECT_EQ(buf.at(2).kind(), EventKind::Call);
    EXPECT_EQ(buf.at(3).kind(), EventKind::Branch);
    EXPECT_EQ(buf.at(4).kind(), EventKind::Return);
    EXPECT_EQ(buf.at(5).kind(), EventKind::Return);
}

TEST(Recorder, WorkScaleMultipliesPayloads)
{
    TraceBuffer buf;
    TraceRecorder rec(buf, 3.0);
    rec.work(10);
    EXPECT_EQ(buf.at(0).payload(), 30u);
    EXPECT_NEAR(rec.workScale(), 3.0, 1e-9);
}

TEST(Recorder, ZeroWorkIsDropped)
{
    TraceBuffer buf;
    TraceRecorder rec(buf);
    rec.work(0);
    EXPECT_TRUE(buf.empty());
}

TEST(Recorder, MemoryEventsCarryAddresses)
{
    TraceBuffer buf;
    TraceRecorder rec(buf);
    rec.call(0);
    rec.loadAt(0x1234);
    rec.storeAt(0x5678);
    rec.ret();
    EXPECT_EQ(buf.at(1).kind(), EventKind::Load);
    EXPECT_EQ(buf.at(1).payload(), 0x1234u);
    EXPECT_EQ(buf.at(2).kind(), EventKind::Store);
    EXPECT_EQ(buf.at(2).payload(), 0x5678u);
}

TraceBuffer
makeThread(FunctionId fid, unsigned bursts)
{
    TraceBuffer buf;
    TraceRecorder rec(buf);
    rec.call(fid);
    for (unsigned i = 0; i < bursts; ++i) {
        rec.work(1000);
        rec.branch(i % 2 == 0);
    }
    rec.ret();
    return buf;
}

TEST(Interleave, PreservesPerThreadEventOrder)
{
    const TraceBuffer a = makeThread(1, 40);
    const TraceBuffer b = makeThread(2, 25);

    InterleaveConfig cfg;
    cfg.quantumInstrs = 5000;
    const TraceBuffer merged = interleaveTraces({&a, &b}, cfg);

    // Partition merged events back per thread and compare.
    std::map<std::uint64_t, std::vector<std::uint64_t>> per_thread;
    std::uint64_t cur = ~0ull;
    for (std::size_t i = 0; i < merged.size(); ++i) {
        const TraceEvent e = merged.at(i);
        if (e.kind() == EventKind::Switch) {
            cur = e.payload();
            continue;
        }
        per_thread[cur].push_back(e.raw());
    }

    ASSERT_EQ(per_thread[0].size(), a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(per_thread[0][i], a.at(i).raw());
    ASSERT_EQ(per_thread[1].size(), b.size());
    for (std::size_t i = 0; i < b.size(); ++i)
        EXPECT_EQ(per_thread[1][i], b.at(i).raw());
}

TEST(Interleave, EmitsMultipleSwitches)
{
    const TraceBuffer a = makeThread(1, 50);
    const TraceBuffer b = makeThread(2, 50);
    InterleaveConfig cfg;
    cfg.quantumInstrs = 4000;
    const TraceBuffer merged = interleaveTraces({&a, &b}, cfg);

    unsigned switches = 0;
    for (std::size_t i = 0; i < merged.size(); ++i) {
        if (merged.at(i).kind() == EventKind::Switch)
            ++switches;
    }
    // 100k instructions at ~4k/quantum: many switches.
    EXPECT_GE(switches, 10u);
}

TEST(Interleave, OnSwitchCallbackRuns)
{
    const TraceBuffer a = makeThread(1, 10);
    InterleaveConfig cfg;
    cfg.quantumInstrs = 2000;
    unsigned called = 0;
    cfg.onSwitch = [&called](TraceRecorder &rec) {
        ++called;
        TraceScope s(rec, 99);
        s.work(5);
    };
    const TraceBuffer merged = interleaveTraces({&a}, cfg);
    EXPECT_GE(called, 2u);

    // The scheduler scope appears right after each Switch event.
    for (std::size_t i = 0; i + 1 < merged.size(); ++i) {
        if (merged.at(i).kind() == EventKind::Switch) {
            EXPECT_EQ(merged.at(i + 1).kind(), EventKind::Call);
            EXPECT_EQ(merged.at(i + 1).payload(), 99u);
        }
    }
}

TEST(Interleave, SingleThreadKeepsAllEvents)
{
    const TraceBuffer a = makeThread(5, 30);
    InterleaveConfig cfg;
    cfg.quantumInstrs = 1000;
    const TraceBuffer merged = interleaveTraces({&a}, cfg);

    std::vector<std::uint64_t> body;
    for (std::size_t i = 0; i < merged.size(); ++i) {
        if (merged.at(i).kind() != EventKind::Switch)
            body.push_back(merged.at(i).raw());
    }
    ASSERT_EQ(body.size(), a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(body[i], a.at(i).raw());
}

TEST(Interleave, IsDeterministic)
{
    const TraceBuffer a = makeThread(1, 30);
    const TraceBuffer b = makeThread(2, 30);
    InterleaveConfig cfg;
    cfg.quantumInstrs = 3000;
    const TraceBuffer m1 = interleaveTraces({&a, &b}, cfg);
    const TraceBuffer m2 = interleaveTraces({&a, &b}, cfg);
    ASSERT_EQ(m1.size(), m2.size());
    for (std::size_t i = 0; i < m1.size(); ++i)
        EXPECT_EQ(m1.at(i).raw(), m2.at(i).raw());
}

} // namespace
} // namespace cgp
