/**
 * @file
 * Tests for the data-side prefetching subsystem (src/dprefetch):
 * stride confidence promotion/demotion, correlation-table recording,
 * eviction bounds and depth/degree limits, semantic-hint coverage and
 * dedup, hint transport through the trace/expander, D-side
 * useful/late/polluting classification, and the fail-soft wrapper.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "codegen/layout.hh"
#include "dprefetch/correlation.hh"
#include "dprefetch/factory.hh"
#include "dprefetch/failsoft.hh"
#include "dprefetch/semantic.hh"
#include "dprefetch/stride.hh"
#include "mem/hierarchy.hh"
#include "trace/expand.hh"
#include "trace/recorder.hh"
#include "util/rng.hh"

namespace cgp
{
namespace
{

constexpr auto kLoad = AccessSource::DemandLoad;
constexpr auto kDPF = AccessSource::DataPrefetch;

/** Standalone L1-D stand-in, memory-backed. */
CacheConfig
dcacheConfig(std::uint32_t size_bytes = 32 * 1024)
{
    CacheConfig c;
    c.name = "l1d";
    c.sizeBytes = size_bytes;
    c.assoc = 2;
    c.lineBytes = 32;
    c.hitLatency = 1;
    return c;
}

// ---------------------------------------------------------------
// Stride prefetcher
// ---------------------------------------------------------------

TEST(Stride, PromotesAfterRepeatedStrideAndPrefetchesAhead)
{
    Cache cache(dcacheConfig(), nullptr, nullptr);
    StrideConfig cfg;
    cfg.degree = 2;
    cfg.promoteAt = 2;
    StrideDataPrefetcher pf(cache, cfg);

    const Addr pc = 0x400100;
    pf.onAccess(pc, 0x1000, false, true, 1); // allocate
    EXPECT_EQ(pf.confidenceFor(pc), 0u);
    pf.onAccess(pc, 0x1040, false, true, 2); // train stride
    EXPECT_EQ(pf.confidenceFor(pc), 0u);
    EXPECT_EQ(pf.prefetchesRequested(), 0u);
    pf.onAccess(pc, 0x1080, false, true, 3); // stride repeats
    EXPECT_EQ(pf.confidenceFor(pc), 1u);
    EXPECT_EQ(pf.prefetchesRequested(), 0u); // below promoteAt

    pf.onAccess(pc, 0x10C0, false, true, 4); // promoted
    EXPECT_EQ(pf.confidenceFor(pc), 2u);
    // Degree 2, stride 0x40 > line size: two distinct target lines.
    EXPECT_EQ(pf.prefetchesRequested(), 2u);
    EXPECT_EQ(cache.prefetchesIssued(kDPF), 2u);
}

TEST(Stride, StrayAccessDemotesWithoutRetraining)
{
    Cache cache(dcacheConfig(), nullptr, nullptr);
    StrideConfig cfg;
    cfg.maxConfidence = 3;
    StrideDataPrefetcher pf(cache, cfg);

    const Addr pc = 0x400200;
    Addr a = 0x2000;
    for (int i = 0; i < 6; ++i, a += 0x40)
        pf.onAccess(pc, a, false, false, i + 1);
    EXPECT_EQ(pf.confidenceFor(pc), cfg.maxConfidence);

    // One stray access: confidence drops, the stride survives...
    pf.onAccess(pc, 0x9000, false, false, 10);
    EXPECT_EQ(pf.confidenceFor(pc), cfg.maxConfidence - 1);
    // ...so the stream re-promotes on the very next matching delta.
    pf.onAccess(pc, 0x9040, false, false, 11);
    EXPECT_EQ(pf.confidenceFor(pc), cfg.maxConfidence);
}

TEST(Stride, RetrainsStrideOnlyAtZeroConfidence)
{
    Cache cache(dcacheConfig(), nullptr, nullptr);
    StrideDataPrefetcher pf(cache);

    const Addr pc = 0x400300;
    pf.onAccess(pc, 0x1000, false, false, 1);
    pf.onAccess(pc, 0x1010, false, false, 2); // stride := 0x10
    pf.onAccess(pc, 0x1030, false, false, 3); // conf 0 -> stride := 0x20
    pf.onAccess(pc, 0x1050, false, false, 4); // matches new stride
    EXPECT_EQ(pf.confidenceFor(pc), 1u);
}

TEST(Stride, TagConflictReallocatesSlot)
{
    Cache cache(dcacheConfig(), nullptr, nullptr);
    StrideConfig cfg;
    cfg.tableEntries = 16;
    StrideDataPrefetcher pf(cache, cfg);

    const Addr pc_a = 0x400400;
    const Addr pc_b = pc_a + 4 * cfg.tableEntries; // same slot
    Addr a = 0x3000;
    for (int i = 0; i < 5; ++i, a += 0x40)
        pf.onAccess(pc_a, a, false, false, i + 1);
    EXPECT_GT(pf.confidenceFor(pc_a), 0u);

    pf.onAccess(pc_b, 0x8000, false, false, 10);
    EXPECT_EQ(pf.confidenceFor(pc_a), 0u); // slot taken over
    EXPECT_EQ(pf.confidenceFor(pc_b), 0u); // fresh allocation
}

// ---------------------------------------------------------------
// Miss-correlation prefetcher
// ---------------------------------------------------------------

TEST(Correlation, RecordsSuccessorsInMruOrderAndPrefetchesThem)
{
    Cache cache(dcacheConfig(), nullptr, nullptr);
    CorrelationDataPrefetcher pf(cache);

    const Addr A = 0x1000, B = 0x2000, C = 0x3000;
    pf.onMiss(0, A, 1);
    pf.onMiss(0, B, 2); // records A -> B
    EXPECT_EQ(pf.successorsOf(A), std::vector<Addr>{B});

    pf.onMiss(0, A, 3); // records B -> A; prefetches succ(A) = {B}
    EXPECT_GE(pf.prefetchesRequested(), 1u);
    EXPECT_EQ(cache.prefetchesIssued(kDPF), pf.prefetchesRequested());

    pf.onMiss(0, C, 4); // records A -> C
    pf.onMiss(0, A, 5); // records C -> A
    EXPECT_EQ(pf.successorsOf(A), (std::vector<Addr>{C, B}));
}

TEST(Correlation, SuccessorListBoundedMruFirst)
{
    Cache cache(dcacheConfig(), nullptr, nullptr);
    CorrelationConfig cfg;
    cfg.successors = 2;
    CorrelationDataPrefetcher pf(cache, cfg);

    const Addr A = 0x1000, B = 0x2000, C = 0x3000, D = 0x4000;
    for (Addr succ : {B, C, D}) {
        pf.onMiss(0, A, 1);
        pf.onMiss(0, succ, 2);
    }
    // B fell off the end: only the two most recent remain.
    EXPECT_EQ(pf.successorsOf(A), (std::vector<Addr>{D, C}));
}

TEST(Correlation, TableBoundedWithLruEviction)
{
    Cache cache(dcacheConfig(), nullptr, nullptr);
    CorrelationConfig cfg;
    cfg.entries = 4;
    cfg.assoc = 2;
    CorrelationDataPrefetcher pf(cache, cfg);

    for (int i = 0; i < 40; ++i)
        pf.onMiss(0, 0x10000 + static_cast<Addr>(i) * 0x1000, i + 1);
    EXPECT_LE(pf.entryCount(), 4u);
    EXPECT_GT(pf.evictions(), 0u);
}

TEST(Correlation, DepthChainsThroughMostRecentSuccessor)
{
    Cache cache(dcacheConfig(), nullptr, nullptr);
    CorrelationConfig cfg;
    cfg.degree = 1;
    cfg.depth = 2;
    CorrelationDataPrefetcher pf(cache, cfg);

    const Addr A = 0x1000, B = 0x2000, C = 0x3000;
    pf.onMiss(0, A, 1);
    pf.onMiss(0, B, 2); // A -> B
    pf.onMiss(0, C, 3); // B -> C
    EXPECT_EQ(pf.prefetchesRequested(), 0u);

    // Miss on A again: depth 2 walks A -> B (prefetch B), then
    // chains through B -> C (prefetch C).  Degree 1 caps each hop.
    pf.onMiss(0, A, 4);
    EXPECT_EQ(pf.prefetchesRequested(), 2u);
}

TEST(Correlation, DegreeCapsPrefetchesPerLookup)
{
    Cache cache(dcacheConfig(), nullptr, nullptr);
    CorrelationConfig cfg;
    cfg.degree = 1;
    cfg.depth = 1;
    CorrelationDataPrefetcher pf(cache, cfg);

    const Addr A = 0x1000;
    for (Addr succ : {0x2000ull, 0x3000ull, 0x4000ull}) {
        pf.onMiss(0, A, 1);
        pf.onMiss(0, succ, 2);
    }
    const auto before = pf.prefetchesRequested();
    pf.onMiss(0, 0x9000, 8); // make lastMiss != A
    pf.onMiss(0, A, 9);      // succ(A) has 3 entries; degree is 1
    EXPECT_EQ(pf.prefetchesRequested(), before + 1);
}

namespace
{

/**
 * Empirical same-set probe, independent of the table's hash: in a
 * direct-mapped 4-set table, allocate trigger @p a then trigger @p b;
 * b's allocation evicts a exactly when the two map to the same set.
 */
bool
corrSameSet(Addr a, Addr b)
{
    Cache cache(dcacheConfig(), nullptr, nullptr);
    CorrelationConfig cfg;
    cfg.entries = 4;
    cfg.assoc = 1;
    CorrelationDataPrefetcher pf(cache, cfg);
    pf.onMiss(0, a, 1);        // lastMiss := a
    pf.onMiss(0, b, 2);        // records a -> b (allocates a)
    pf.onMiss(0, 0x7fff00, 3); // records b -> ... (allocates b)
    return pf.evictions() == 1;
}

} // namespace

TEST(Correlation, SetAssociativityScopesReplacement)
{
    // Find three triggers sharing one set and a helper in another —
    // probed empirically so the test survives hash changes.
    const Addr base = 0x100000;
    std::vector<Addr> sameset = {base};
    Addr helper = invalidAddr;
    for (Addr c = base + 0x40; c < base + 64 * 0x40; c += 0x40) {
        if (corrSameSet(base, c)) {
            if (sameset.size() < 3)
                sameset.push_back(c);
        } else if (helper == invalidAddr) {
            helper = c;
        }
    }
    ASSERT_EQ(sameset.size(), 3u);
    ASSERT_NE(helper, invalidAddr);

    // Same geometry (4 sets) but 2-way: the first two same-set
    // triggers coexist in their set.
    Cache cache(dcacheConfig(), nullptr, nullptr);
    CorrelationConfig cfg;
    cfg.entries = 8;
    cfg.assoc = 2;
    CorrelationDataPrefetcher pf(cache, cfg);
    Cycle now = 1;
    auto alloc = [&](Addr t) {
        pf.onMiss(0, t, ++now);
        pf.onMiss(0, helper, ++now); // records t -> helper
    };
    alloc(sameset[0]);
    alloc(sameset[1]);
    EXPECT_EQ(pf.evictions(), 0u);
    EXPECT_FALSE(pf.successorsOf(sameset[0]).empty());
    EXPECT_FALSE(pf.successorsOf(sameset[1]).empty());

    // The third same-set trigger overflows the 2-way set and evicts
    // its LRU way — even though the table still has free entries
    // elsewhere.  Replacement is set-scoped, not global.
    alloc(sameset[2]);
    EXPECT_EQ(pf.evictions(), 1u);
    EXPECT_LE(pf.entryCount(), cfg.entries);
    EXPECT_TRUE(pf.successorsOf(sameset[0]).empty());
    EXPECT_FALSE(pf.successorsOf(sameset[1]).empty());
    EXPECT_FALSE(pf.successorsOf(sameset[2]).empty());
}

namespace
{

struct CorrReplay
{
    std::uint64_t requested = 0;
    std::uint64_t evictions = 0;
    std::uint64_t issued = 0;
    std::size_t entries = 0;
    std::vector<std::vector<Addr>> sampled;
};

/** One deterministic random-miss replay, asserting the AMC table
 *  invariants along the way. */
CorrReplay
runCorrReplay(std::uint64_t seed)
{
    Cache cache(dcacheConfig(), nullptr, nullptr);
    CorrelationConfig cfg;
    cfg.entries = 64;
    cfg.assoc = 4;
    cfg.successors = 3;
    cfg.degree = 2;
    cfg.depth = 2;
    CorrelationDataPrefetcher pf(cache, cfg);

    Rng rng(seed);
    Cycle now = 1;
    for (int i = 0; i < 5000; ++i) {
        ++now;
        cache.tick(now);
        // 256 hot lines: plenty of repeats AND plenty of conflicts.
        const Addr a = 0x100000 + (rng.next() % 256) * 0x40;
        const auto before = pf.prefetchesRequested();
        pf.onMiss(0, a, now);
        // Per-miss issue bound: at most degree per hop, depth hops.
        EXPECT_LE(pf.prefetchesRequested() - before,
                  std::uint64_t{cfg.degree} * cfg.depth);
        // The table never exceeds its budget.
        EXPECT_LE(pf.entryCount(), cfg.entries);
    }

    CorrReplay r;
    r.requested = pf.prefetchesRequested();
    r.evictions = pf.evictions();
    r.issued = cache.prefetchesIssued(kDPF);
    r.entries = pf.entryCount();
    for (Addr a = 0x100000; a < 0x100000 + 256 * 0x40; a += 0x40) {
        const std::vector<Addr> succ = pf.successorsOf(a);
        // Successor lists honour their per-trigger bound.
        EXPECT_LE(succ.size(), cfg.successors);
        r.sampled.push_back(succ);
    }
    return r;
}

} // namespace

TEST(Correlation, PropertyRandomStreamBoundsAndDeterminism)
{
    for (const std::uint64_t seed : {1ull, 42ull, 1234ull}) {
        const CorrReplay a = runCorrReplay(seed);
        ASSERT_GT(a.requested, 0u) << seed;
        ASSERT_GT(a.evictions, 0u) << seed; // conflicts exercised

        // Replaying the identical miss stream reproduces the table
        // and every counter bit-for-bit.
        const CorrReplay b = runCorrReplay(seed);
        EXPECT_EQ(a.requested, b.requested) << seed;
        EXPECT_EQ(a.evictions, b.evictions) << seed;
        EXPECT_EQ(a.issued, b.issued) << seed;
        EXPECT_EQ(a.entries, b.entries) << seed;
        EXPECT_EQ(a.sampled, b.sampled) << seed;
    }
}

// ---------------------------------------------------------------
// Semantic prefetcher
// ---------------------------------------------------------------

TEST(Semantic, BtreeHintsCoverMoreLinesThanHeapHints)
{
    Cache cache(dcacheConfig(), nullptr, nullptr);
    SemanticConfig cfg;
    cfg.lines = 2;
    cfg.btreeLines = 4;
    SemanticDataPrefetcher pf(cache, cfg);

    pf.onHint(DataHintKind::HeapRecord, 0x1000, 1);
    EXPECT_EQ(pf.prefetchesRequested(), 2u);
    pf.onHint(DataHintKind::BtreeChild, 0x4000, 2);
    EXPECT_EQ(pf.prefetchesRequested(), 6u);
    EXPECT_EQ(pf.hintsSeen(), 2u);
    EXPECT_EQ(cache.prefetchesIssued(kDPF), 6u);
}

TEST(Semantic, RepeatedHintsDeduplicated)
{
    Cache cache(dcacheConfig(), nullptr, nullptr);
    SemanticConfig cfg;
    cfg.lines = 2;
    SemanticDataPrefetcher pf(cache, cfg);

    pf.onHint(DataHintKind::HeapNextSlot, 0x1000, 1);
    const auto requested = pf.prefetchesRequested();
    // The iterator advance path re-announces the same page.
    pf.onHint(DataHintKind::HeapNextSlot, 0x1000, 2);
    pf.onHint(DataHintKind::HeapNextSlot, 0x1008, 3); // same lines
    EXPECT_EQ(pf.prefetchesRequested(), requested);
    EXPECT_EQ(pf.linesDeduped(), 2u * cfg.lines);
    EXPECT_EQ(pf.hintsSeen(), 3u);
}

// ---------------------------------------------------------------
// Hint transport: recorder -> trace -> expander -> DynInst
// ---------------------------------------------------------------

TEST(HintTransport, HintsRideTheTraceAndAttachToInstructions)
{
    FunctionRegistry reg;
    const FunctionId f = reg.declare("F", FunctionTraits::small());
    TraceBuffer trace;
    TraceRecorder rec(trace);
    rec.call(f);
    rec.work(20);
    rec.hint(DataHintKind::BtreeChild, 0xABC0);
    rec.loadAt(0x1000'0000);
    rec.work(10);
    rec.hint(DataHintKind::HeapNextSlot, 0x5540);
    rec.hint(DataHintKind::HeapRecord, invalidAddr); // dropped
    rec.storeAt(0x1000'0040);
    rec.ret();

    LayoutBuilder builder(reg);
    const CodeImage image = builder.buildOriginal();
    InstructionExpander ex(reg, image, trace);
    std::vector<DynInst> hinted;
    DynInst inst;
    while (ex.next(inst)) {
        if (inst.hintAddr != invalidAddr)
            hinted.push_back(inst);
    }
    ASSERT_EQ(hinted.size(), 2u);
    EXPECT_EQ(hinted[0].hintAddr, 0xABC0u);
    EXPECT_EQ(static_cast<DataHintKind>(hinted[0].hintKind),
              DataHintKind::BtreeChild);
    EXPECT_EQ(hinted[1].hintAddr, 0x5540u);
    EXPECT_EQ(static_cast<DataHintKind>(hinted[1].hintKind),
              DataHintKind::HeapNextSlot);
}

TEST(HintTransport, PayloadPacksKindAndAddress)
{
    const TraceEvent e =
        makeHintEvent(DataHintKind::HeapNextPage, 0x1234'5678);
    EXPECT_EQ(e.kind(), EventKind::Hint);
    EXPECT_EQ(hintKindOf(e.payload()), DataHintKind::HeapNextPage);
    EXPECT_EQ(hintAddrOf(e.payload()), 0x1234'5678u);
}

// ---------------------------------------------------------------
// D-side classification (§5.6 rules with AccessSource::DataPrefetch)
// ---------------------------------------------------------------

TEST(DsideClassification, UsefulLateAndPollutingSeparated)
{
    // 4-line cache: 2 sets x 2 ways.
    Cache cache(dcacheConfig(128), nullptr, nullptr);

    // Useful: filled before the demand load arrives.
    ASSERT_TRUE(cache.prefetch(0x2000, 1, kDPF));
    cache.tick(200);
    EXPECT_TRUE(cache.access(0x2000, 200, kLoad, false).hit);
    EXPECT_EQ(cache.prefHits(kDPF), 1u);
    EXPECT_EQ(cache.demandMisses(), 0u);

    // Late: demand load joins the in-flight prefetch.
    ASSERT_TRUE(cache.prefetch(0x2040, 201, kDPF));
    const auto r = cache.access(0x2040, 203, kLoad, false);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.delayedHit);
    EXPECT_EQ(cache.delayedHits(kDPF), 1u);
    EXPECT_EQ(cache.demandMisses(), 0u);

    // Polluting: filled, never referenced, classified at finalize.
    cache.tick(400);
    ASSERT_TRUE(cache.prefetch(0x3000, 400, kDPF));
    cache.tick(600);
    cache.finalize();
    EXPECT_EQ(cache.useless(kDPF), 1u);
    // Conservation: every issued prefetch classified exactly once.
    EXPECT_EQ(cache.prefetchesIssued(kDPF),
              cache.prefHits(kDPF) + cache.delayedHits(kDPF) +
                  cache.useless(kDPF));
}

TEST(DsideClassification, HierarchyFinalizeCoversL2)
{
    MemoryHierarchy mem;
    // A prefetch into the L2 that is never referenced must be
    // classified useless by MemoryHierarchy::finalize() — the L2 is
    // finalized explicitly, not via the L1 chain.
    ASSERT_TRUE(mem.l2().prefetch(0x7000, 1, kDPF));
    mem.tick(500);
    mem.finalize();
    EXPECT_EQ(mem.l2().useless(kDPF), 1u);
    EXPECT_EQ(mem.l2().prefetchesIssued(kDPF), 1u);
}

// ---------------------------------------------------------------
// Factory + combined engine
// ---------------------------------------------------------------

TEST(Factory, NoneYieldsNoEngine)
{
    Cache cache(dcacheConfig(), nullptr, nullptr);
    DPrefetchConfig cfg;
    EXPECT_EQ(makeDataPrefetcher(cache, cfg), nullptr);
}

TEST(Factory, KindsProduceNamedEngines)
{
    Cache cache(dcacheConfig(), nullptr, nullptr);
    const std::pair<DataPrefetchKind, const char *> kinds[] = {
        {DataPrefetchKind::Stride, "stride"},
        {DataPrefetchKind::Correlation, "corr"},
        {DataPrefetchKind::Semantic, "semantic"},
        {DataPrefetchKind::Combined, "combined"},
    };
    for (const auto &[kind, name] : kinds) {
        DPrefetchConfig cfg;
        cfg.kind = kind;
        const auto pf = makeDataPrefetcher(cache, cfg);
        ASSERT_NE(pf, nullptr);
        EXPECT_STREQ(pf->name(), name);
        EXPECT_STREQ(dataPrefetchKindName(kind), name);
    }
}

TEST(Factory, CombinedForwardsAllEventChannels)
{
    Cache cache(dcacheConfig(), nullptr, nullptr);
    DPrefetchConfig cfg;
    cfg.kind = DataPrefetchKind::Combined;
    const auto pf = makeDataPrefetcher(cache, cfg);
    ASSERT_NE(pf, nullptr);

    // Semantic channel reaches the semantic part.
    pf->onHint(DataHintKind::BtreeChild, 0x4000, 1);
    EXPECT_GT(cache.prefetchesIssued(kDPF), 0u);

    // Access channel reaches the stride part: train a stream.
    const auto before = cache.prefetchesIssued(kDPF) +
        cache.squashedPrefetches();
    Addr a = 0x100000;
    for (int i = 0; i < 8; ++i, a += 0x40)
        pf->onAccess(0x400100, a, false, false, i + 2);
    EXPECT_GT(cache.prefetchesIssued(kDPF) +
                  cache.squashedPrefetches(),
              before);
}

// ---------------------------------------------------------------
// Fail-soft wrapper
// ---------------------------------------------------------------

struct ThrowingDataPrefetcher : DataPrefetcher
{
    void
    onAccess(Addr, Addr, bool, bool, Cycle) override
    {
        throw std::runtime_error("injected dprefetch fault");
    }
    const char *name() const override { return "throwy"; }
};

TEST(FailSoft, FirstFaultDisablesInnerAndRunContinues)
{
    FailSoftDataPrefetcher fs(
        std::make_unique<ThrowingDataPrefetcher>());
    EXPECT_FALSE(fs.degraded());
    EXPECT_STREQ(fs.name(), "throwy");

    EXPECT_NO_THROW(fs.onAccess(0x100, 0x1000, false, true, 1));
    EXPECT_TRUE(fs.degraded());
    EXPECT_NE(fs.reason().find("injected dprefetch fault"),
              std::string::npos);
    EXPECT_STREQ(fs.name(), "none (degraded)");

    // Every hook is now a no-op; nothing escapes.
    EXPECT_NO_THROW(fs.onAccess(0x100, 0x1040, false, true, 2));
    EXPECT_NO_THROW(fs.onMiss(0x100, 0x1080, 3));
    EXPECT_NO_THROW(fs.onHint(DataHintKind::HeapRecord, 0x2000, 4));
}

} // namespace
} // namespace cgp
