/**
 * @file
 * Harness tests: configuration naming, workload construction, and
 * end-to-end simulation invariants on a small SPEC proxy (fast) —
 * the full DB workloads are exercised by integration_test.cc.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "harness/simulator.hh"
#include "harness/workload.hh"

namespace cgp
{
namespace
{

SimConfig
withCghc(const CghcConfig &geom)
{
    return SimConfig::withCgpGeometry(LayoutKind::PettisHansen, 4,
                                      geom);
}

TEST(SimConfig, DescribeMatchesPaperLabels)
{
    EXPECT_EQ(SimConfig::o5().describe(), "O5");
    EXPECT_EQ(SimConfig::o5Om().describe(), "O5+OM");
    EXPECT_EQ(SimConfig::withNL(LayoutKind::PettisHansen, 4)
                  .describe(),
              "O5+OM+NL_4");
    EXPECT_EQ(SimConfig::withCgp(LayoutKind::Original, 2).describe(),
              "O5+CGP_2");
    EXPECT_EQ(SimConfig::perfectICacheOn(LayoutKind::PettisHansen)
                  .describe(),
              "O5+OM+perf-Icache");
    EXPECT_EQ(
        SimConfig::withRunAheadNL(LayoutKind::PettisHansen, 4, 2)
            .describe(),
        "O5+OM+RANL_4skip2");
}

TEST(SimConfig, DefaultsMatchTable1)
{
    const SimConfig c = SimConfig::o5();
    EXPECT_EQ(c.core.fetchWidth, 4u);
    EXPECT_EQ(c.core.fetchQueueSize, 16u);
    EXPECT_EQ(c.core.lsqSize, 16u);
    EXPECT_EQ(c.core.rsSize, 64u);
    EXPECT_EQ(c.core.intAlus, 4u);
    EXPECT_EQ(c.core.multipliers, 2u);
    EXPECT_EQ(c.core.memPorts, 4u);
    EXPECT_EQ(c.mem.l1i.sizeBytes, 32u * 1024);
    EXPECT_EQ(c.mem.l1i.assoc, 2u);
    EXPECT_EQ(c.mem.l1i.lineBytes, 32u);
    EXPECT_EQ(c.mem.l2.sizeBytes, 1024u * 1024);
    EXPECT_EQ(c.mem.l2.assoc, 4u);
    EXPECT_EQ(c.mem.l2.hitLatency, 16u);
    EXPECT_EQ(1u << c.core.branch.phtBits, 2048u);
}

struct ProxyWorkload
{
    Workload w;

    ProxyWorkload()
    {
        spec::SpecProgramSpec spec;
        spec.name = "harness-proxy";
        spec.functions = 80;
        spec.hotFunctions = 40;
        spec.workPerCall = 60.0;
        spec.trainInstrs = 300'000;
        spec.testInstrs = 60'000;
        w = WorkloadFactory::buildSpec(spec);
    }
};

TEST(Simulator, BasicInvariants)
{
    ProxyWorkload p;
    const SimResult r = runSimulation(p.w, SimConfig::o5());
    EXPECT_GT(r.instrs, 250'000u);
    EXPECT_GT(r.cycles, r.instrs / 4); // 4-wide ceiling
    EXPECT_GT(r.icacheAccesses, 0u);
    EXPECT_LE(r.icacheMisses, r.icacheAccesses);
    EXPECT_GT(r.ipc(), 0.0);
    EXPECT_EQ(r.workload, "harness-proxy");
    EXPECT_EQ(r.config, "O5");
}

TEST(Simulator, PerfectICacheIsLowerBoundOnCycles)
{
    ProxyWorkload p;
    const auto base = runSimulation(p.w, SimConfig::o5Om());
    const auto nl =
        runSimulation(p.w, SimConfig::withNL(LayoutKind::PettisHansen,
                                             4));
    const auto cgp = runSimulation(
        p.w, SimConfig::withCgp(LayoutKind::PettisHansen, 4));
    const auto perfect = runSimulation(
        p.w, SimConfig::perfectICacheOn(LayoutKind::PettisHansen));

    EXPECT_LE(perfect.cycles, base.cycles);
    EXPECT_LE(perfect.cycles, nl.cycles);
    EXPECT_LE(perfect.cycles, cgp.cycles);
    EXPECT_EQ(perfect.icacheMisses, 0u);
}

TEST(Simulator, PrefetchersReduceMisses)
{
    ProxyWorkload p;
    const auto base = runSimulation(p.w, SimConfig::o5Om());
    const auto nl = runSimulation(
        p.w, SimConfig::withNL(LayoutKind::PettisHansen, 4));
    const auto cgp = runSimulation(
        p.w, SimConfig::withCgp(LayoutKind::PettisHansen, 4));
    EXPECT_LT(nl.icacheMisses, base.icacheMisses);
    EXPECT_LT(cgp.icacheMisses, base.icacheMisses);
    EXPECT_GT(cgp.cghcAccesses, 0u);
    EXPECT_GT(cgp.cghc.issued + cgp.squashedPrefetches, 0u);
}

TEST(Simulator, PrefetchAccountingConserved)
{
    ProxyWorkload p;
    const auto r = runSimulation(
        p.w, SimConfig::withCgp(LayoutKind::PettisHansen, 4));
    const auto total = r.totalPrefetch();
    EXPECT_EQ(total.issued,
              total.prefHits + total.delayedHits + total.useless);
    EXPECT_EQ(total.issued, r.nl.issued + r.cghc.issued);
}

TEST(Simulator, OmScalesInstructionCount)
{
    ProxyWorkload p;
    const auto o5 = runSimulation(p.w, SimConfig::o5());
    const auto om = runSimulation(p.w, SimConfig::o5Om());
    const double ratio = static_cast<double>(om.instrs) /
        static_cast<double>(o5.instrs);
    EXPECT_NEAR(ratio, 0.88, 0.04);
}

TEST(Simulator, CghcGeometriesAllRun)
{
    ProxyWorkload p;
    for (const auto &geom :
         {CghcConfig::oneLevel1K(), CghcConfig::oneLevel32K(),
          CghcConfig::twoLevel1K16K(), CghcConfig::twoLevel2K32K(),
          CghcConfig::infiniteSize()}) {
        const auto r = runSimulation(p.w, withCghc(geom));
        EXPECT_GT(r.cycles, 0u) << geom.describe();
        EXPECT_GT(r.cghcAccesses, 0u) << geom.describe();
    }
}

TEST(WorkloadFactory, ScaleReadsEnvironment)
{
    // Whatever the ambient value, the scale is positive and finite.
    const double s = WorkloadFactory::scale();
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1000.0);
    EXPECT_GT(WorkloadFactory::quantumInstrs(), 0u);
}

TEST(WorkloadFactory, ExplicitScaleBuildsAreDeterministic)
{
    spec::SpecProgramSpec s;
    s.name = "scale-probe";
    s.functions = 40;
    s.hotFunctions = 20;
    s.workPerCall = 50.0;
    s.trainInstrs = 120'000;
    s.testInstrs = 30'000;

    // Same explicit scale twice: identical traces, independent of
    // the CGP_SCALE environment.
    const Workload a = WorkloadFactory::buildSpec(s, 0.1);
    const Workload b = WorkloadFactory::buildSpec(s, 0.1);
    ASSERT_EQ(a.trace->size(), b.trace->size());
    const SimResult ra = runSimulation(a, SimConfig::o5Om());
    const SimResult rb = runSimulation(b, SimConfig::o5Om());
    EXPECT_TRUE(ra == rb);

    // A bigger scale grows the workload (the knob saturates at
    // 0.25, so both points sit below that).
    const Workload big = WorkloadFactory::buildSpec(s, 0.25);
    EXPECT_GT(big.trace->size(), a.trace->size());

    // Non-positive scales are rejected rather than silently
    // defaulted.
    EXPECT_THROW(WorkloadFactory::buildSpec(s, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(WorkloadFactory::buildSpec(s, -1.0),
                 std::invalid_argument);
}

} // namespace
} // namespace cgp
