/**
 * @file
 * Tests for the cache hierarchy: hit/miss semantics, LRU, latencies
 * through the shared FIFO port, and — most importantly for this
 * paper — the prefetch classification rules of §5.6 (pref hit /
 * delayed hit / useless / squashed).
 */

#include <gtest/gtest.h>

#include <map>

#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "util/rng.hh"

namespace cgp
{
namespace
{

constexpr auto kFetch = AccessSource::DemandFetch;
constexpr auto kNL = AccessSource::PrefetchNL;
constexpr auto kCGHC = AccessSource::PrefetchCGHC;

/** Standalone 4-line cache for focused eviction tests. */
CacheConfig
tinyConfig()
{
    CacheConfig c;
    c.name = "tiny";
    c.sizeBytes = 128; // 4 lines
    c.assoc = 2;
    c.lineBytes = 32;
    c.hitLatency = 1;
    return c;
}

TEST(Cache, MissThenHitAfterFill)
{
    Cache cache(tinyConfig(), nullptr, nullptr);
    Cycle now = 1;
    const auto miss = cache.access(0x1000, now, kFetch, false);
    EXPECT_FALSE(miss.hit);
    // Memory-backed: hitLatency + 80.
    EXPECT_EQ(miss.readyCycle, now + 81);

    now = miss.readyCycle;
    cache.tick(now);
    const auto hit = cache.access(0x1000, now, kFetch, false);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.readyCycle, now + 1);
    EXPECT_EQ(cache.demandMisses(), 1u);
    EXPECT_EQ(cache.demandAccesses(), 2u);
}

TEST(Cache, SubLineAddressesShareALine)
{
    Cache cache(tinyConfig(), nullptr, nullptr);
    Cycle now = 1;
    const auto r = cache.access(0x1000, now, kFetch, false);
    now = r.readyCycle;
    cache.tick(now);
    EXPECT_TRUE(cache.access(0x101F, now, kFetch, false).hit);
    EXPECT_FALSE(cache.access(0x1020, now, kFetch, false).hit);
}

TEST(Cache, LruEvictsOldest)
{
    // 2 sets x 2 ways; same-set lines are 64B apart.
    Cache cache(tinyConfig(), nullptr, nullptr);
    Cycle now = 1;
    auto touch = [&](Addr a) {
        const auto r = cache.access(a, now, kFetch, false);
        now = std::max(now, r.readyCycle);
        cache.tick(now);
    };
    touch(0x1000);          // set 0
    touch(0x1040);          // set 0
    touch(0x1000);          // refresh LRU of 0x1000
    touch(0x1080);          // set 0: evicts 0x1040
    EXPECT_TRUE(cache.access(0x1000, now, kFetch, false).hit);
    EXPECT_FALSE(cache.access(0x1080, now, kFetch, false).hit ==
                 false);
    EXPECT_FALSE(cache.access(0x1040, now, kFetch, false).hit);
}

TEST(Cache, InflightDemandCoalesces)
{
    Cache cache(tinyConfig(), nullptr, nullptr);
    const auto first = cache.access(0x1000, 1, kFetch, false);
    const auto second = cache.access(0x1008, 2, kFetch, false);
    EXPECT_FALSE(second.hit);
    EXPECT_TRUE(second.delayedHit);
    EXPECT_EQ(second.readyCycle, first.readyCycle);
    EXPECT_EQ(cache.demandMisses(), 1u);
}

TEST(Cache, PrefetchClassificationPrefHit)
{
    Cache cache(tinyConfig(), nullptr, nullptr);
    ASSERT_TRUE(cache.prefetch(0x2000, 1, kNL));
    cache.tick(200); // fill lands
    const auto r = cache.access(0x2000, 200, kFetch, false);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(cache.prefHits(kNL), 1u);
    EXPECT_EQ(cache.delayedHits(kNL), 0u);
    EXPECT_EQ(cache.useless(kNL), 0u);

    // Only the FIRST touch counts as a pref hit.
    cache.access(0x2000, 201, kFetch, false);
    EXPECT_EQ(cache.prefHits(kNL), 1u);
}

TEST(Cache, PrefetchClassificationDelayedHit)
{
    Cache cache(tinyConfig(), nullptr, nullptr);
    ASSERT_TRUE(cache.prefetch(0x2000, 1, kCGHC));
    // Demand arrives before the fill completes.
    const auto r = cache.access(0x2000, 3, kFetch, false);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.delayedHit);
    EXPECT_EQ(cache.delayedHits(kCGHC), 1u);
    // It is not a demand miss: the prefetch already owns the fill.
    EXPECT_EQ(cache.demandMisses(), 0u);
}

TEST(Cache, PrefetchClassificationUselessOnEviction)
{
    Cache cache(tinyConfig(), nullptr, nullptr);
    ASSERT_TRUE(cache.prefetch(0x1000, 1, kNL)); // set 0
    cache.tick(200);
    // Two demand lines push it out of the 2-way set.
    Cycle now = 200;
    for (Addr a : {0x1040, 0x1080}) {
        const auto r = cache.access(a, now, kFetch, false);
        now = r.readyCycle;
        cache.tick(now);
    }
    EXPECT_EQ(cache.useless(kNL), 1u);
}

TEST(Cache, PrefetchClassificationUselessAtFinalize)
{
    Cache cache(tinyConfig(), nullptr, nullptr);
    ASSERT_TRUE(cache.prefetch(0x2000, 1, kNL));
    cache.tick(200);                        // filled, never touched
    ASSERT_TRUE(cache.prefetch(0x3000, 201, kCGHC)); // still in flight
    cache.finalize();
    EXPECT_EQ(cache.useless(kNL), 1u);
    EXPECT_EQ(cache.useless(kCGHC), 1u);
}

TEST(Cache, PrefetchSquashedWhenPresentOrInflight)
{
    Cache cache(tinyConfig(), nullptr, nullptr);
    ASSERT_TRUE(cache.prefetch(0x2000, 1, kNL));
    EXPECT_FALSE(cache.prefetch(0x2000, 2, kNL)); // in flight
    cache.tick(200);
    EXPECT_FALSE(cache.prefetch(0x2000, 201, kNL)); // resident
    EXPECT_EQ(cache.squashedPrefetches(), 2u);
    EXPECT_EQ(cache.prefetchesIssued(kNL), 1u);
}

TEST(Cache, DemandedInflightPrefetchNotUselessLater)
{
    Cache cache(tinyConfig(), nullptr, nullptr);
    ASSERT_TRUE(cache.prefetch(0x1000, 1, kNL));
    cache.access(0x1000, 2, kFetch, false); // delayed hit
    cache.tick(300);
    // Evict it: must NOT count as useless (it was used).
    Cycle now = 300;
    for (Addr a : {0x1040, 0x1080}) {
        const auto r = cache.access(a, now, kFetch, false);
        now = r.readyCycle;
        cache.tick(now);
    }
    EXPECT_EQ(cache.useless(kNL), 0u);
    EXPECT_EQ(cache.delayedHits(kNL), 1u);
}

TEST(Hierarchy, LatenciesMatchTable1)
{
    MemoryHierarchy mem;
    // L1 miss, L2 miss -> memory: ~1 (port) + 16 + 80.
    const auto r1 = mem.l1i().access(0x400000, 10, kFetch, false);
    EXPECT_GE(r1.readyCycle, 10 + 16 + 80);
    EXPECT_LE(r1.readyCycle, 10 + 2 + 16 + 80);

    mem.tick(r1.readyCycle);
    // L1 hit now.
    const auto r2 = mem.l1i().access(0x400000, r1.readyCycle, kFetch,
                                     false);
    EXPECT_TRUE(r2.hit);
    EXPECT_EQ(r2.readyCycle, r1.readyCycle + 1);

    // A different L1 line in the same (now valid) L2 line: L2 hit.
    // L2 lines are 32B here, so force a fresh L1 line whose L2 entry
    // was filled: reuse the same line after evicting from L1 only is
    // complex — instead verify an L2 hit via a second fetch of an
    // L2-resident line after L1 eviction pressure.
    Cycle now = r1.readyCycle + 1;
    // Fill many lines mapping to the same L1 set (stride = L1 size /
    // assoc = 16KB) to evict 0x400000 from L1 but not from 1MB L2.
    for (int i = 1; i <= 3; ++i) {
        const auto r = mem.l1i().access(0x400000 + i * 16 * 1024, now,
                                        kFetch, false);
        now = r.readyCycle;
        mem.tick(now);
    }
    const auto r3 = mem.l1i().access(0x400000, now, kFetch, false);
    EXPECT_FALSE(r3.hit);
    // Served from L2: ~1 (port) + 16, well below a memory trip.
    EXPECT_LE(r3.readyCycle, now + 20);
    EXPECT_GE(r3.readyCycle, now + 16);
}

TEST(Hierarchy, IAndDClassificationDoNotCrossContaminate)
{
    // §5.6 counters must stay per-source when both prefetchers run
    // concurrently — with and without the shared arbiter installed.
    for (const bool with_arbiter : {false, true}) {
        HierarchyConfig cfg;
        cfg.arbiter.enabled = with_arbiter;
        MemoryHierarchy mem(cfg);
        constexpr auto kD = AccessSource::DataPrefetch;

        // I-side: a useful CGHC prefetch and a useless NL prefetch;
        // D-side: a useful data prefetch.  Staggered cycles keep the
        // shared port free so every request is admitted.
        ASSERT_TRUE(mem.l1i().prefetch(0x400000, 1, kCGHC));
        ASSERT_TRUE(mem.l1i().prefetch(0x410000, 2, kNL));
        ASSERT_TRUE(mem.l1d().prefetch(0x800000, 3, kD));
        mem.tick(200);
        mem.l1i().access(0x400000, 200, kFetch, false);
        mem.l1d().access(0x800000, 201, AccessSource::DemandLoad,
                         false);
        mem.finalize();

        EXPECT_EQ(mem.l1i().prefHits(kCGHC), 1u) << with_arbiter;
        EXPECT_EQ(mem.l1i().useless(kNL), 1u) << with_arbiter;
        EXPECT_EQ(mem.l1d().prefHits(kD), 1u) << with_arbiter;

        // Nothing leaks across sources or across the I/D split.
        EXPECT_EQ(mem.l1i().prefetchesIssued(kD), 0u);
        EXPECT_EQ(mem.l1i().prefHits(kNL), 0u);
        EXPECT_EQ(mem.l1i().useless(kCGHC), 0u);
        EXPECT_EQ(mem.l1d().prefetchesIssued(kNL), 0u);
        EXPECT_EQ(mem.l1d().prefetchesIssued(kCGHC), 0u);
        EXPECT_EQ(mem.l1d().useless(kD), 0u);
        EXPECT_EQ(mem.l1i().squashedPrefetches(), 0u);
        EXPECT_EQ(mem.l1d().squashedPrefetches(), 0u);
    }
}

TEST(Hierarchy, DoubleFinalizeIsIdempotent)
{
    MemoryHierarchy mem;
    // One never-referenced prefetched line per cache level path.
    ASSERT_TRUE(mem.l1i().prefetch(0x400000, 1, kNL));
    ASSERT_TRUE(mem.l1d().prefetch(0x800000, 2,
                                   AccessSource::DataPrefetch));
    mem.tick(200);
    mem.finalize();
    const auto i_useless = mem.l1i().useless(kNL);
    const auto d_useless =
        mem.l1d().useless(AccessSource::DataPrefetch);
    EXPECT_EQ(i_useless, 1u);
    EXPECT_EQ(d_useless, 1u);

    // A second finalize (simulator teardown paths can reach it
    // twice) must not re-classify anything.
    mem.finalize();
    EXPECT_EQ(mem.l1i().useless(kNL), i_useless);
    EXPECT_EQ(mem.l1d().useless(AccessSource::DataPrefetch),
              d_useless);
}

TEST(Hierarchy, PortSharedBetweenIAndD)
{
    MemoryHierarchy mem;
    const auto before = mem.port().requests();
    mem.l1i().access(0x400000, 1, kFetch, false);
    mem.l1d().access(0x800000, 1, AccessSource::DemandLoad, false);
    EXPECT_EQ(mem.port().requests(), before + 2);
}

TEST(MemoryPort, FifoBandwidthLimitsStarts)
{
    MemoryPort port;
    // Issue 6 requests in the same cycle: starts must spread out at
    // `bandwidth` per cycle and never decrease.
    Cycle prev = 0;
    std::map<Cycle, int> per_cycle;
    for (int i = 0; i < 6; ++i) {
        const Cycle s = port.request(10);
        EXPECT_GE(s, prev);
        prev = s;
        ++per_cycle[s];
    }
    for (const auto &[cycle, n] : per_cycle)
        EXPECT_LE(n, static_cast<int>(MemoryPort::bandwidth));
    EXPECT_EQ(port.requests(), 6u);
}

class CacheGeometryTest
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(CacheGeometryTest, RandomAccessStreamInvariants)
{
    const auto [size_kb, assoc] = GetParam();
    CacheConfig cfg;
    cfg.sizeBytes = size_kb * 1024;
    cfg.assoc = assoc;
    cfg.lineBytes = 32;
    Cache cache(cfg, nullptr, nullptr);

    Rng rng(size_kb * 131 + assoc);
    Cycle now = 1;
    std::uint64_t accesses = 0;
    for (int i = 0; i < 20000; ++i) {
        const Addr a = 0x400000 + (rng.next() & 0x3ffff);
        const bool write = rng.nextBool(0.2);
        if (rng.nextBool(0.1)) {
            cache.prefetch(a, now, kNL);
        } else {
            cache.access(a, now, kFetch, write);
            ++accesses;
        }
        ++now;
        cache.tick(now);
    }
    cache.finalize();

    EXPECT_EQ(cache.demandAccesses(), accesses);
    EXPECT_LE(cache.demandMisses(), cache.demandAccesses());
    // Conservation: every issued prefetch is classified exactly once.
    EXPECT_EQ(cache.prefetchesIssued(kNL),
              cache.prefHits(kNL) + cache.delayedHits(kNL) +
                  cache.useless(kNL));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Values(std::make_pair(1u, 1u), std::make_pair(4u, 2u),
                      std::make_pair(32u, 2u),
                      std::make_pair(32u, 8u),
                      std::make_pair(64u, 4u)));

} // namespace
} // namespace cgp
