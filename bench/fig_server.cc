/**
 * @file
 * Server-scale figure (beyond the paper): the multi-core DB server
 * model serving closed-loop client sessions.  Points are the cross
 * product of cores {1, 2, 4} x sessions {16, 256} x {no prefetch,
 * CGP_4 + D-combined behind the arbiter} on the two concurrent
 * mixes; every point serves the same query population, so
 * cycles-to-serve, throughput and the latency percentiles compare
 * directly.
 *
 * Interesting reads: how throughput scales with cores once the
 * shared L2 port is the bottleneck (port-wait column), and whether
 * prefetching buys more at high session counts, where the per-core
 * I-cache is cold after every bind.
 */

#include <cstdint>
#include <iostream>

#include "common.hh"

int
main()
{
    using namespace cgp;
    using namespace cgp::bench;

    const exp::CampaignRun run = runPaperCampaign("server-scale");

    printCycleTable("Server scale", toMatrix(run),
                    run.workloadNames(), run.configLabels());
    std::cout << "\n";

    TablePrinter t("Server scale — throughput and latency");
    t.setHeader({"workload", "config", "cores", "sessions",
                 "queries", "q/Mcycle", "p50", "p95", "p99",
                 "port wait"});
    for (const auto &w : run.workloadNames()) {
        for (const auto &c : run.configLabels()) {
            const auto &r = run.at(w, c);
            if (!r.serverEnabled)
                continue;
            const auto &srv = r.server;
            t.addRow({w, c, TablePrinter::num(srv.cores),
                      TablePrinter::num(srv.sessions),
                      TablePrinter::num(srv.queriesServed),
                      TablePrinter::fixed(srv.queriesPerMcycle(), 2),
                      TablePrinter::num(srv.latencyP50),
                      TablePrinter::num(srv.latencyP95),
                      TablePrinter::num(srv.latencyP99),
                      TablePrinter::num(srv.portWaitCycles)});
        }
        t.addRule();
    }
    t.print(std::cout);
    std::cout << "\n";

    TablePrinter u("Server scale — per-core utilization");
    u.setHeader({"workload", "config", "core", "util", "instrs",
                 "I$ misses", "bus lines", "port wait", "queries"});
    for (const auto &w : run.workloadNames()) {
        for (const auto &c : run.configLabels()) {
            const auto &r = run.at(w, c);
            if (!r.serverEnabled || r.server.perCore.size() < 2)
                continue;
            for (std::size_t i = 0; i < r.server.perCore.size();
                 ++i) {
                const auto &core = r.server.perCore[i];
                u.addRow({w, c, std::to_string(i),
                          TablePrinter::percent(core.utilization()),
                          TablePrinter::num(core.instrs),
                          TablePrinter::num(core.icacheMisses),
                          TablePrinter::num(core.busLines),
                          TablePrinter::num(core.portWaitCycles),
                          TablePrinter::num(core.queries)});
            }
        }
        u.addRule();
    }
    u.print(std::cout);

    std::cout
        << "\nExpectation: adding cores raises throughput "
           "sub-linearly (shared-port wait cycles grow with the "
           "core count), and the prefetching configuration recovers "
           "part of the gap by hiding the per-core cold-cache "
           "penalty after each session bind.\n";
    return 0;
}
