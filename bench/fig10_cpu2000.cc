/**
 * @file
 * Figure 10: Effectiveness of CGP on CPU2000 applications.
 *
 * Paper: with a 32KB I-cache the perfect-I$ gap is 17% for gcc, 9%
 * for crafty, 2% for gap and <1% elsewhere; I-cache miss ratios are
 * near zero except gcc (0.5%) and crafty (0.3%); where prefetching
 * matters at all, NL_4 performs about as well as CGP_4 (gcc +7-8%,
 * crafty +4% over O5+OM).
 */

#include <iostream>

#include "common.hh"

int
main()
{
    using namespace cgp;
    using namespace cgp::bench;

    const exp::CampaignRun run = runPaperCampaign("fig10");

    TablePrinter t("Figure 10 — CPU2000 under OM, NL_4, CGP_4, "
                   "perfect I-cache");
    t.setHeader({"benchmark", "O5+OM cycles", "I$ miss ratio",
                 "NL_4 speedup", "CGP_4 speedup",
                 "perf-I$ gap"});
    for (const auto &w : run.workloadNames()) {
        const auto &om = run.at(w, "O5+OM");
        const auto &nl = run.at(w, "O5+OM+NL_4");
        const auto &cg = run.at(w, "O5+OM+CGP_4");
        const auto &pf = run.at(w, "O5+OM+perf-Icache");
        const double miss_ratio = om.icacheAccesses == 0
            ? 0.0
            : static_cast<double>(om.icacheMisses) /
                static_cast<double>(om.icacheAccesses);
        t.addRow({w, TablePrinter::num(om.cycles),
                  TablePrinter::percent(miss_ratio, 2),
                  TablePrinter::fixed(
                      static_cast<double>(om.cycles) /
                          static_cast<double>(nl.cycles),
                      3),
                  TablePrinter::fixed(
                      static_cast<double>(om.cycles) /
                          static_cast<double>(cg.cycles),
                      3),
                  TablePrinter::percent(
                      static_cast<double>(om.cycles) /
                              static_cast<double>(pf.cycles) -
                          1.0)});
    }
    t.print(std::cout);

    std::cout << "\nPaper reference: only gcc (17% gap, 0.5% miss "
                 "ratio) and crafty (9%, 0.3%) leave room for "
                 "prefetching, and there NL_4 ~= CGP_4; the other "
                 "five are I-cache insensitive, so CGP is "
                 "unnecessary for them.\n";
    return 0;
}
