/**
 * @file
 * Table 1: microarchitecture parameter values — printed from the
 * live default configuration objects so the table cannot drift from
 * what the simulations actually use.
 */

#include <iostream>

#include "harness/simconfig.hh"
#include "util/table.hh"

int
main()
{
    using namespace cgp;

    const SimConfig c = SimConfig::o5();

    TablePrinter t("Table 1. Microarchitecture Parameter Values");
    t.setHeader({"Parameter", "Value"});
    t.addRow({"Fetch, Decode & Issue Width",
              std::to_string(c.core.fetchWidth)});
    t.addRow({"Inst Fetch & L/S Queue Size",
              std::to_string(c.core.fetchQueueSize)});
    t.addRow({"Reservation stations",
              std::to_string(c.core.rsSize)});
    t.addRow({"Functional Units",
              std::to_string(c.core.intAlus) + "add/" +
                  std::to_string(c.core.multipliers) + "mult"});
    t.addRow({"Memory system ports to CPU",
              std::to_string(c.core.memPorts)});
    t.addRow({"L1 I and D cache each",
              std::to_string(c.mem.l1i.sizeBytes / 1024) + "KB," +
                  std::to_string(c.mem.l1i.assoc) + "-way," +
                  std::to_string(c.mem.l1i.lineBytes) + "byte"});
    t.addRow({"Unified L2 cache",
              std::to_string(c.mem.l2.sizeBytes / (1024 * 1024)) +
                  "MB," + std::to_string(c.mem.l2.assoc) + "-way," +
                  std::to_string(c.mem.l2.lineBytes) + "byte"});
    t.addRow({"L1 hit latency(cycles)",
              std::to_string(c.mem.l1i.hitLatency)});
    t.addRow({"L2 hit latency(cycles)",
              std::to_string(c.mem.l2.hitLatency)});
    t.addRow({"Mem latency (cycles)", "80"});
    t.addRow({"Branch Predictor",
              "2-lev," +
                  std::to_string((1u << c.core.branch.phtBits) /
                                 1024) +
                  "K-entry"});
    t.print(std::cout);
    return 0;
}
