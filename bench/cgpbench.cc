/**
 * @file
 * cgpbench — unified driver for the paper's experiment campaigns.
 *
 *   cgpbench list
 *       Show every campaign (and the groups figures/ablations/all).
 *
 *   cgpbench run <campaign|group>... [options]
 *       Run campaigns on the parallel engine, print the cycle
 *       tables, and write one BENCH_<name>.json per campaign.
 *         --threads N       worker threads (default: hardware)
 *         --dir D           parent directory for resumable run dirs
 *         --seed S          override the campaign seed
 *         --artifact-dir D  where BENCH_*.json goes (default ".")
 *         --fresh           discard any previous run dir first
 *         --quiet           suppress per-job progress logging
 *         --retries N       retry a transiently-failing job N times
 *         --on-fail P       strict (abort) or degrade (finish the
 *                           healthy jobs, record the failures)
 *         --watchdog-cycles N   per-job cycle budget (deterministic)
 *         --watchdog-wall S     per-job wall-clock budget, seconds
 *         --hang-timeout S      hung-shard monitor budget, seconds
 *
 *   cgpbench resume <dir> [options]
 *       Finish a killed run: re-run its campaign with the same run
 *       directory; completed jobs are loaded, not re-simulated, and
 *       corrupt artifacts are quarantined + re-run automatically.
 *
 *   cgpbench report <dir>
 *       Summarize a run directory without simulating anything,
 *       including any terminally failed jobs and their causes.
 *
 *   cgpbench verify <dir>
 *       Audit a run directory's artifact integrity (CRC seals,
 *       fingerprints, orphaned tmp files, quarantine inventory)
 *       without modifying it.  Exit 0 iff everything checks out.
 *
 *   cgpbench chaos <campaign> --dir D [options]
 *       Kill/resume torture loop: repeatedly crash the campaign at
 *       injected fault points (and corrupt surviving artifacts),
 *       then assert a final clean resume reproduces the
 *       uninterrupted BENCH byte-for-byte.
 *         --cycles N        kill/resume cycles (default 25)
 */

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "exp/artifact.hh"
#include "exp/campaigns.hh"
#include "exp/chaosloop.hh"
#include "exp/engine.hh"
#include "exp/rundir.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace
{

using namespace cgp;
using namespace cgp::exp;

struct Options
{
    std::vector<std::string> names;
    unsigned threads = 0;
    std::string dir;
    std::string artifactDir = ".";
    std::string artifactFile; // single campaign only
    bool seedSet = false;
    std::uint64_t seed = 0;
    bool fresh = false;
    bool quiet = false;
    unsigned retries = 0;
    std::optional<FailurePolicy> onFail;
    std::uint64_t watchdogCycles = 0;
    double watchdogWall = 0.0;
    double hangTimeout = 0.0;
    unsigned chaosCycles = 25;
};

int
usage()
{
    std::cerr
        << "usage: cgpbench list\n"
        << "       cgpbench run <campaign|figures|ablations|all>...\n"
        << "           [--threads N] [--dir D] [--seed S]\n"
        << "           [--artifact-dir D] [--artifact FILE]\n"
        << "           [--fresh] [--quiet] [--retries N]\n"
        << "           [--on-fail strict|degrade]\n"
        << "           [--watchdog-cycles N] [--watchdog-wall S]\n"
        << "           [--hang-timeout S]\n"
        << "       cgpbench resume <dir | name --dir D>\n"
        << "           [--threads N] [--quiet] [--retries N]\n"
        << "           [--on-fail strict|degrade] [--seed S]\n"
        << "       cgpbench report <dir | name --dir D>\n"
        << "       cgpbench verify <dir | name --dir D>\n"
        << "       cgpbench chaos <campaign> --dir D [--cycles N]\n"
        << "           [--threads N] [--seed S] [--retries N]\n";
    return 2;
}

bool
parseOptions(int argc, char **argv, int first, Options &opt)
{
    for (int i = first; i < argc; ++i) {
        const std::string a = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "cgpbench: " << a
                          << " needs a value\n";
                return nullptr;
            }
            return argv[++i];
        };
        if (a == "--threads") {
            const char *v = value();
            if (!v)
                return false;
            opt.threads =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (a == "--dir") {
            const char *v = value();
            if (!v)
                return false;
            opt.dir = v;
        } else if (a == "--seed") {
            const char *v = value();
            if (!v)
                return false;
            opt.seedSet = true;
            opt.seed = std::strtoull(v, nullptr, 10);
        } else if (a == "--artifact-dir") {
            const char *v = value();
            if (!v)
                return false;
            opt.artifactDir = v;
        } else if (a == "--artifact") {
            const char *v = value();
            if (!v)
                return false;
            opt.artifactFile = v;
        } else if (a == "--retries") {
            const char *v = value();
            if (!v)
                return false;
            opt.retries =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (a == "--on-fail") {
            const char *v = value();
            if (!v)
                return false;
            try {
                opt.onFail = failurePolicyFromString(v);
            } catch (const std::invalid_argument &e) {
                std::cerr << "cgpbench: " << e.what() << "\n";
                return false;
            }
        } else if (a == "--watchdog-cycles") {
            const char *v = value();
            if (!v)
                return false;
            opt.watchdogCycles = std::strtoull(v, nullptr, 10);
        } else if (a == "--watchdog-wall") {
            const char *v = value();
            if (!v)
                return false;
            opt.watchdogWall = std::strtod(v, nullptr);
        } else if (a == "--hang-timeout") {
            const char *v = value();
            if (!v)
                return false;
            opt.hangTimeout = std::strtod(v, nullptr);
        } else if (a == "--cycles") {
            const char *v = value();
            if (!v)
                return false;
            opt.chaosCycles =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (a == "--fresh") {
            opt.fresh = true;
        } else if (a == "--quiet") {
            opt.quiet = true;
        } else if (!a.empty() && a[0] == '-') {
            std::cerr << "cgpbench: unknown option " << a << "\n";
            return false;
        } else {
            opt.names.push_back(a);
        }
    }
    return true;
}

std::vector<std::string>
expandGroups(const std::vector<std::string> &names)
{
    std::vector<std::string> out;
    for (const std::string &n : names) {
        for (const std::string &c : campaignGroup(n)) {
            if (std::find(out.begin(), out.end(), c) == out.end())
                out.push_back(c);
        }
    }
    return out;
}

int
cmdList()
{
    TablePrinter t("Campaigns");
    t.setHeader({"name", "jobs", "title"});
    for (const std::string &name : campaignNames()) {
        const CampaignSpec spec = paperCampaign(name);
        t.addRow({name, std::to_string(expandJobs(spec).size()),
                  spec.title});
    }
    t.print(std::cout);
    std::cout << "\nGroups: figures, ablations, all "
                 "(smoke is only run by name)\n";
    return 0;
}

EngineOptions
engineOptions(const Options &opt)
{
    EngineOptions eopt;
    eopt.threads = opt.threads;
    eopt.verbose = !opt.quiet;
    eopt.retries = opt.retries;
    eopt.onFail = opt.onFail;
    eopt.watchdogCycles = opt.watchdogCycles;
    eopt.watchdogWallSeconds = opt.watchdogWall;
    eopt.hangTimeoutSeconds = opt.hangTimeout;
    return eopt;
}

void
printFailures(const CampaignRun &run)
{
    if (run.failures.empty())
        return;
    TablePrinter t("Failed jobs (degraded campaign)");
    t.setHeader({"job", "workload", "config", "kind", "attempts",
                 "error"});
    for (const JobFailure &f : run.failures) {
        t.addRow({std::to_string(f.index),
                  run.jobs[f.index].workload,
                  run.jobs[f.index].label, f.kind,
                  std::to_string(f.attempts), f.message});
    }
    t.print(std::cout);
    std::cout << "\n";
}

/** Run one campaign and emit its tables + artifact; returns the
 *  number of terminally failed jobs. */
std::size_t
runOne(const CampaignSpec &spec, PaperWorkloadBank &bank,
       const Options &opt)
{
    EngineOptions eopt = engineOptions(opt);
    if (!opt.dir.empty()) {
        eopt.runDir = opt.dir + "/" + spec.name;
        if (opt.fresh)
            std::filesystem::remove_all(eopt.runDir);
    }

    const CampaignRun run = runCampaign(spec, bank, eopt);

    printCycleTables(run, std::cout);
    printFailures(run);
    const std::string artifact = !opt.artifactFile.empty()
        ? opt.artifactFile
        : opt.artifactDir + "/BENCH_" + spec.name + ".json";
    writeBenchJson(artifact, run);
    std::cout << "\n[" << spec.name << "] " << run.executed
              << " jobs run, " << run.skipped << " resumed, "
              << run.failures.size() << " failed, "
              << run.threadsUsed << " threads ("
              << run.steals << " steals), "
              << TablePrinter::fixed(run.wallSeconds, 1)
              << "s; artifact " << artifact << "\n";
    if (run.quarantined != 0) {
        std::cout << "[" << spec.name << "] quarantined "
                  << run.quarantined
                  << " corrupt artifact(s); see "
                  << eopt.runDir << "/quarantine\n";
    }
    std::cout << "\n";
    return run.failures.size();
}

int
cmdRun(const Options &opt)
{
    if (opt.names.empty()) {
        std::cerr << "cgpbench run: no campaigns given\n";
        return usage();
    }
    const std::vector<std::string> names = expandGroups(opt.names);
    if (!opt.artifactFile.empty() && names.size() != 1) {
        std::cerr << "cgpbench run: --artifact needs exactly one "
                     "campaign\n";
        return 2;
    }
    PaperWorkloadBank bank;
    std::size_t failed = 0;
    for (const std::string &name : names) {
        CampaignSpec spec = paperCampaign(name);
        if (opt.seedSet)
            spec.seed = opt.seed;
        failed += runOne(spec, bank, opt);
    }
    // A degraded campaign completed but is not healthy; make the
    // exit code say so for CI.
    return failed == 0 ? 0 : 3;
}

/** resume/report/verify accept either a literal run-dir path or a
 *  campaign name plus --dir, mirroring how `run` lays out
 *  `<dir>/<campaign>`. */
std::string
resolveRunDir(const Options &opt)
{
    if (opt.dir.empty())
        return opt.names[0];
    return opt.dir + "/" + opt.names[0];
}

int
cmdResume(const Options &opt)
{
    if (opt.names.size() != 1) {
        std::cerr << "cgpbench resume: need exactly one run dir\n";
        return usage();
    }
    const std::string dir = resolveRunDir(opt);

    // The manifest normally tells us which campaign the dir holds.
    // If it is corrupt or torn, fall back to the directory name
    // (run dirs are laid out as <dir>/<campaign>): the engine's
    // prepare step then quarantines the bad manifest, rebuilds it,
    // and keeps every job file whose seal still matches.
    std::string campaign;
    std::uint64_t seed = 0;
    bool seedKnown = false;
    try {
        const LoadedRun loaded = loadRunDir(dir);
        campaign = loaded.campaign;
        seed = loaded.seed;
        seedKnown = true;
    } catch (const std::exception &e) {
        campaign = std::filesystem::path(dir).filename().string();
        std::cerr << "cgpbench resume: manifest unreadable ("
                  << e.what() << "); recovering campaign \""
                  << campaign << "\" from the directory name\n";
    }

    CampaignSpec spec = paperCampaign(campaign);
    if (seedKnown)
        spec.seed = seed;
    if (opt.seedSet)
        spec.seed = opt.seed;

    const std::string artifact = opt.artifactDir + "/BENCH_" +
        campaign + ".json";

    PaperWorkloadBank bank;
    EngineOptions eopt = engineOptions(opt);
    eopt.runDir = dir;
    const CampaignRun run = runCampaign(spec, bank, eopt);
    printCycleTables(run, std::cout);
    printFailures(run);
    writeBenchJson(artifact, run);
    std::cout << "\n[" << spec.name << "] " << run.executed
              << " jobs run, " << run.skipped << " resumed, "
              << run.failures.size() << " failed; artifact "
              << artifact << "\n";
    return run.failures.empty() ? 0 : 3;
}

int
cmdReport(const Options &opt)
{
    if (opt.names.size() != 1) {
        std::cerr << "cgpbench report: need exactly one run dir\n";
        return usage();
    }
    const std::string dir = resolveRunDir(opt);
    LoadedRun run;
    try {
        run = loadRunDir(dir);
    } catch (const std::exception &e) {
        std::cerr << "cgpbench report: " << e.what()
                  << "\nAudit with: cgpbench verify " << dir
                  << "\nRecover with: cgpbench resume " << dir
                  << "\n";
        return 1;
    }

    std::cout << "Campaign:    " << run.campaign << " — "
              << run.title << "\n"
              << "Fingerprint: " << run.fingerprint << "\n"
              << "Seed:        " << run.seed << "\n"
              << "Jobs:        " << run.results.size() << "/"
              << run.jobs.size() << " complete, "
              << run.failures.size() << " failed\n\n";

    TablePrinter t("Job status");
    t.setHeader({"job", "workload", "config", "status", "cycles"});
    for (const JobSpec &j : run.jobs) {
        const auto it = run.results.find(j.index);
        const bool failed =
            run.failures.find(j.index) != run.failures.end();
        const char *status = it != run.results.end() ? "done"
            : failed                                 ? "failed"
                                                     : "pending";
        t.addRow({std::to_string(j.index), j.workload, j.label,
                  status,
                  it == run.results.end()
                      ? "-"
                      : TablePrinter::num(it->second.cycles)});
    }
    t.print(std::cout);

    // Server-model campaigns get a queueing summary and a per-core
    // breakdown; plain campaigns print only the job rows above.
    bool any_server = false;
    for (const auto &[index, r] : run.results) {
        if (r.serverEnabled) {
            any_server = true;
            break;
        }
    }
    if (any_server) {
        std::cout << "\n";
        TablePrinter s("Server summary");
        s.setHeader({"job", "workload", "config", "cores",
                     "sessions", "queries", "q/Mcycle",
                     "q/sec @1GHz", "p50", "p95", "p99"});
        for (const JobSpec &j : run.jobs) {
            const auto it = run.results.find(j.index);
            if (it == run.results.end() ||
                !it->second.serverEnabled)
                continue;
            const auto &srv = it->second.server;
            s.addRow({std::to_string(j.index), j.workload, j.label,
                      TablePrinter::num(srv.cores),
                      TablePrinter::num(srv.sessions),
                      TablePrinter::num(srv.queriesServed),
                      TablePrinter::fixed(srv.queriesPerMcycle(), 2),
                      TablePrinter::fixed(
                          srv.queriesPerMcycle() * 1000.0, 0),
                      TablePrinter::num(srv.latencyP50),
                      TablePrinter::num(srv.latencyP95),
                      TablePrinter::num(srv.latencyP99)});
        }
        s.print(std::cout);

        std::cout << "\n";
        TablePrinter pc("Per-core breakdown");
        pc.setHeader({"job", "core", "util", "instrs", "I$ misses",
                      "D$ misses", "bus lines", "port wait",
                      "queries", "binds"});
        for (const JobSpec &j : run.jobs) {
            const auto it = run.results.find(j.index);
            if (it == run.results.end() ||
                !it->second.serverEnabled)
                continue;
            const auto &srv = it->second.server;
            for (std::size_t c = 0; c < srv.perCore.size(); ++c) {
                const auto &core = srv.perCore[c];
                pc.addRow({std::to_string(j.index),
                           std::to_string(c),
                           TablePrinter::percent(core.utilization()),
                           TablePrinter::num(core.instrs),
                           TablePrinter::num(core.icacheMisses),
                           TablePrinter::num(core.dcacheMisses),
                           TablePrinter::num(core.busLines),
                           TablePrinter::num(core.portWaitCycles),
                           TablePrinter::num(core.queries),
                           TablePrinter::num(core.binds)});
            }
            pc.addRule();
        }
        pc.print(std::cout);
    }

    // Sampled campaigns get an estimate table: mean [95% CI] per
    // metric, plus the cycle-loop speedup against the full-detail
    // job of the same workload+config when the run contains one.
    bool any_sampled = false;
    for (const auto &[index, r] : run.results) {
        if (r.sampledEnabled) {
            any_sampled = true;
            break;
        }
    }
    if (any_sampled) {
        const auto ci = [](const sample::SampledEstimate &e,
                           int digits) {
            return TablePrinter::fixed(e.mean, digits) + " [" +
                TablePrinter::fixed(e.ciLow, digits) + ", " +
                TablePrinter::fixed(e.ciHigh, digits) + "]";
        };
        // Full-detail job for (workload, label-before-"+smp").
        const auto fullDetail =
            [&run](const JobSpec &job) -> const SimResult * {
            const std::size_t pos = job.label.find("+smp");
            const std::string base = pos == std::string::npos
                ? job.label
                : job.label.substr(0, pos);
            for (const JobSpec &j : run.jobs) {
                const auto it = run.results.find(j.index);
                if (it == run.results.end() ||
                    it->second.sampledEnabled)
                    continue;
                if (j.workload == job.workload && j.label == base)
                    return &it->second;
            }
            return nullptr;
        };
        std::cout << "\n";
        TablePrinter sm("Sampled estimates (mean [95% CI])");
        sm.setHeader({"job", "workload", "config", "windows",
                      "CPI", "L1-I miss", "L1-D miss",
                      "detailed cyc", "speedup"});
        for (const JobSpec &j : run.jobs) {
            const auto it = run.results.find(j.index);
            if (it == run.results.end() ||
                !it->second.sampledEnabled)
                continue;
            const auto &smp = it->second.sampled;
            const SimResult *base = fullDetail(j);
            const std::string speedup = base == nullptr ||
                    smp.detailedCycles == 0
                ? "-"
                : TablePrinter::fixed(
                      static_cast<double>(base->cycles) /
                          static_cast<double>(smp.detailedCycles),
                      1) +
                    "x";
            sm.addRow({std::to_string(j.index), j.workload, j.label,
                       TablePrinter::num(smp.windows),
                       ci(smp.cpi, 3), ci(smp.l1iMissRate, 4),
                       ci(smp.l1dMissRate, 4),
                       TablePrinter::num(smp.detailedCycles),
                       speedup});
        }
        sm.print(std::cout);
    }

    if (!run.failures.empty()) {
        std::cout << "\n";
        TablePrinter f("Failed jobs");
        f.setHeader({"job", "kind", "attempts", "error"});
        for (const auto &[index, fail] : run.failures) {
            f.addRow({std::to_string(index), fail.kind,
                      std::to_string(fail.attempts),
                      fail.message});
        }
        f.print(std::cout);
    }
    if (run.results.size() < run.jobs.size()) {
        std::cout << "\nResume with: cgpbench resume " << dir
                  << "\n";
    }
    return 0;
}

int
cmdVerify(const Options &opt)
{
    if (opt.names.size() != 1) {
        std::cerr << "cgpbench verify: need exactly one run dir\n";
        return usage();
    }
    const std::string dir = resolveRunDir(opt);
    if (!std::filesystem::is_directory(dir)) {
        std::cerr << "cgpbench verify: no such run dir: " << dir
                  << "\n";
        return 2;
    }
    const VerifyReport report = verifyRunDir(dir);

    std::cout << "Run dir:     " << dir << "\n";
    if (report.manifestOk) {
        std::cout << "Campaign:    " << report.campaign << "\n"
                  << "Fingerprint: " << report.fingerprint << "\n"
                  << "Jobs:        " << report.jobsTotal << " ("
                  << report.jobsDone << " done, "
                  << report.jobsPending << " pending, "
                  << report.jobsFailed << " failed)\n"
                  << "Job files:   " << report.jobFilesOk
                  << " verified OK\n";
    } else {
        std::cout << "Manifest:    INVALID\n";
    }
    if (!report.quarantineEntries.empty()) {
        std::cout << "Quarantine:  "
                  << report.quarantineEntries.size()
                  << " artifact(s)\n";
        for (const std::string &q : report.quarantineEntries)
            std::cout << "    " << q << "\n";
    }
    if (!report.issues.empty()) {
        std::cout << "\n";
        TablePrinter t("Integrity issues");
        t.setHeader({"artifact", "problem"});
        for (const VerifyIssue &i : report.issues)
            t.addRow({i.file, i.problem});
        t.print(std::cout);
        std::cout << "\nA resume (cgpbench resume " << dir
                  << ") quarantines these and re-runs the "
                     "affected jobs.\n";
    }
    std::cout << (report.ok() ? "\nOK\n" : "\nNOT OK\n");
    return report.ok() ? 0 : 1;
}

int
cmdChaos(const Options &opt)
{
    if (opt.names.size() != 1) {
        std::cerr << "cgpbench chaos: need exactly one campaign\n";
        return usage();
    }
    if (opt.dir.empty()) {
        std::cerr << "cgpbench chaos: --dir is required (the loop "
                     "kills and resumes a persistent run dir)\n";
        return 2;
    }
    CampaignSpec spec = paperCampaign(opt.names[0]);
    if (opt.seedSet)
        spec.seed = opt.seed;

    ChaosLoopConfig config;
    config.cycles = opt.chaosCycles;
    config.threads = opt.threads != 0 ? opt.threads : 2;
    config.dir = opt.dir + "/" + spec.name + "-chaos";
    config.retries = opt.retries != 0 ? opt.retries : 2;
    config.verbose = !opt.quiet;
    if (opt.seedSet)
        config.seed = opt.seed;

    PaperWorkloadBank bank;
    ChaosLoopHarness harness(spec, bank, config);
    const ChaosLoopResult result = harness.run();

    std::cout << "Chaos loop:  " << spec.name << "\n"
              << "Cycles:      " << result.cycles << " ("
              << result.crashes << " crashes, "
              << result.cleanRuns << " clean)\n"
              << "Corruptions: " << result.corruptions << "\n"
              << "Quarantined: " << result.quarantined << "\n"
              << "Jobs run:    " << result.executedJobs << "\n"
              << "Verdict:     "
              << (result.identical
                      ? "BENCH byte-identical to uninterrupted run"
                      : "MISMATCH: " + result.mismatch)
              << "\n";
    return result.ok() ? 0 : 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];

    Options opt;
    if (!parseOptions(argc, argv, 2, opt))
        return 2;

    try {
        if (cmd == "list")
            return cmdList();
        if (cmd == "run")
            return cmdRun(opt);
        if (cmd == "resume")
            return cmdResume(opt);
        if (cmd == "report")
            return cmdReport(opt);
        if (cmd == "verify")
            return cmdVerify(opt);
        if (cmd == "chaos")
            return cmdChaos(opt);
    } catch (const std::exception &e) {
        std::cerr << "cgpbench: " << e.what() << "\n";
        return 1;
    }
    std::cerr << "cgpbench: unknown command '" << cmd << "'\n";
    return usage();
}
