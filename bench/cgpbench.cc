/**
 * @file
 * cgpbench — unified driver for the paper's experiment campaigns.
 *
 *   cgpbench list
 *       Show every campaign (and the groups figures/ablations/all).
 *
 *   cgpbench run <campaign|group>... [options]
 *       Run campaigns on the parallel engine, print the cycle
 *       tables, and write one BENCH_<name>.json per campaign.
 *         --threads N       worker threads (default: hardware)
 *         --dir D           parent directory for resumable run dirs
 *         --seed S          override the campaign seed
 *         --artifact-dir D  where BENCH_*.json goes (default ".")
 *         --fresh           discard any previous run dir first
 *         --quiet           suppress per-job progress logging
 *
 *   cgpbench resume <dir> [options]
 *       Finish a killed run: re-run its campaign with the same run
 *       directory; completed jobs are loaded, not re-simulated.
 *
 *   cgpbench report <dir>
 *       Summarize a run directory without simulating anything.
 */

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "exp/artifact.hh"
#include "exp/campaigns.hh"
#include "exp/engine.hh"
#include "exp/rundir.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace
{

using namespace cgp;
using namespace cgp::exp;

struct Options
{
    std::vector<std::string> names;
    unsigned threads = 0;
    std::string dir;
    std::string artifactDir = ".";
    std::string artifactFile; // single campaign only
    bool seedSet = false;
    std::uint64_t seed = 0;
    bool fresh = false;
    bool quiet = false;
};

int
usage()
{
    std::cerr
        << "usage: cgpbench list\n"
        << "       cgpbench run <campaign|figures|ablations|all>...\n"
        << "           [--threads N] [--dir D] [--seed S]\n"
        << "           [--artifact-dir D] [--artifact FILE]\n"
        << "           [--fresh] [--quiet]\n"
        << "       cgpbench resume <dir> [--threads N] [--quiet]\n"
        << "       cgpbench report <dir>\n";
    return 2;
}

bool
parseOptions(int argc, char **argv, int first, Options &opt)
{
    for (int i = first; i < argc; ++i) {
        const std::string a = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "cgpbench: " << a
                          << " needs a value\n";
                return nullptr;
            }
            return argv[++i];
        };
        if (a == "--threads") {
            const char *v = value();
            if (!v)
                return false;
            opt.threads =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (a == "--dir") {
            const char *v = value();
            if (!v)
                return false;
            opt.dir = v;
        } else if (a == "--seed") {
            const char *v = value();
            if (!v)
                return false;
            opt.seedSet = true;
            opt.seed = std::strtoull(v, nullptr, 10);
        } else if (a == "--artifact-dir") {
            const char *v = value();
            if (!v)
                return false;
            opt.artifactDir = v;
        } else if (a == "--artifact") {
            const char *v = value();
            if (!v)
                return false;
            opt.artifactFile = v;
        } else if (a == "--fresh") {
            opt.fresh = true;
        } else if (a == "--quiet") {
            opt.quiet = true;
        } else if (!a.empty() && a[0] == '-') {
            std::cerr << "cgpbench: unknown option " << a << "\n";
            return false;
        } else {
            opt.names.push_back(a);
        }
    }
    return true;
}

std::vector<std::string>
expandGroups(const std::vector<std::string> &names)
{
    std::vector<std::string> out;
    for (const std::string &n : names) {
        for (const std::string &c : campaignGroup(n)) {
            if (std::find(out.begin(), out.end(), c) == out.end())
                out.push_back(c);
        }
    }
    return out;
}

int
cmdList()
{
    TablePrinter t("Campaigns");
    t.setHeader({"name", "jobs", "title"});
    for (const std::string &name : campaignNames()) {
        const CampaignSpec spec = paperCampaign(name);
        t.addRow({name, std::to_string(expandJobs(spec).size()),
                  spec.title});
    }
    t.print(std::cout);
    std::cout << "\nGroups: figures, ablations, all "
                 "(smoke is only run by name)\n";
    return 0;
}

/** Run one campaign and emit its tables + artifact. */
void
runOne(const CampaignSpec &spec, PaperWorkloadBank &bank,
       const Options &opt)
{
    EngineOptions eopt;
    eopt.threads = opt.threads;
    eopt.verbose = !opt.quiet;
    if (!opt.dir.empty()) {
        eopt.runDir = opt.dir + "/" + spec.name;
        if (opt.fresh)
            std::filesystem::remove_all(eopt.runDir);
    }

    const CampaignRun run = runCampaign(spec, bank, eopt);

    printCycleTables(run, std::cout);
    const std::string artifact = !opt.artifactFile.empty()
        ? opt.artifactFile
        : opt.artifactDir + "/BENCH_" + spec.name + ".json";
    writeBenchJson(artifact, run);
    std::cout << "\n[" << spec.name << "] " << run.executed
              << " jobs run, " << run.skipped << " resumed, "
              << run.threadsUsed << " threads ("
              << run.steals << " steals), "
              << TablePrinter::fixed(run.wallSeconds, 1)
              << "s; artifact " << artifact << "\n\n";
}

int
cmdRun(const Options &opt)
{
    if (opt.names.empty()) {
        std::cerr << "cgpbench run: no campaigns given\n";
        return usage();
    }
    const std::vector<std::string> names = expandGroups(opt.names);
    if (!opt.artifactFile.empty() && names.size() != 1) {
        std::cerr << "cgpbench run: --artifact needs exactly one "
                     "campaign\n";
        return 2;
    }
    PaperWorkloadBank bank;
    for (const std::string &name : names) {
        CampaignSpec spec = paperCampaign(name);
        if (opt.seedSet)
            spec.seed = opt.seed;
        runOne(spec, bank, opt);
    }
    return 0;
}

int
cmdResume(const Options &opt)
{
    if (opt.names.size() != 1) {
        std::cerr << "cgpbench resume: need exactly one run dir\n";
        return usage();
    }
    const std::string dir = opt.names[0];
    const LoadedRun loaded = loadRunDir(dir);

    CampaignSpec spec = paperCampaign(loaded.campaign);
    spec.seed = loaded.seed;

    Options ropt = opt;
    ropt.names.clear();
    ropt.fresh = false;
    ropt.artifactFile = ropt.artifactDir + "/BENCH_" +
        loaded.campaign + ".json";

    PaperWorkloadBank bank;
    EngineOptions eopt;
    eopt.threads = ropt.threads;
    eopt.verbose = !ropt.quiet;
    eopt.runDir = dir;
    const CampaignRun run = runCampaign(spec, bank, eopt);
    printCycleTables(run, std::cout);
    writeBenchJson(ropt.artifactFile, run);
    std::cout << "\n[" << spec.name << "] " << run.executed
              << " jobs run, " << run.skipped << " resumed; artifact "
              << ropt.artifactFile << "\n";
    return 0;
}

int
cmdReport(const Options &opt)
{
    if (opt.names.size() != 1) {
        std::cerr << "cgpbench report: need exactly one run dir\n";
        return usage();
    }
    const LoadedRun run = loadRunDir(opt.names[0]);

    std::cout << "Campaign:    " << run.campaign << " — "
              << run.title << "\n"
              << "Fingerprint: " << run.fingerprint << "\n"
              << "Seed:        " << run.seed << "\n"
              << "Jobs:        " << run.results.size() << "/"
              << run.jobs.size() << " complete\n\n";

    TablePrinter t("Job status");
    t.setHeader({"job", "workload", "config", "status", "cycles"});
    for (const JobSpec &j : run.jobs) {
        const auto it = run.results.find(j.index);
        t.addRow({std::to_string(j.index), j.workload, j.label,
                  it == run.results.end() ? "pending" : "done",
                  it == run.results.end()
                      ? "-"
                      : TablePrinter::num(it->second.cycles)});
    }
    t.print(std::cout);
    if (run.results.size() < run.jobs.size()) {
        std::cout << "\nResume with: cgpbench resume "
                  << opt.names[0] << "\n";
    }
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];

    Options opt;
    if (!parseOptions(argc, argv, 2, opt))
        return 2;

    try {
        if (cmd == "list")
            return cmdList();
        if (cmd == "run")
            return cmdRun(opt);
        if (cmd == "resume")
            return cmdResume(opt);
        if (cmd == "report")
            return cmdReport(opt);
    } catch (const std::exception &e) {
        std::cerr << "cgpbench: " << e.what() << "\n";
        return 1;
    }
    std::cerr << "cgpbench: unknown command '" << cmd << "'\n";
    return usage();
}
