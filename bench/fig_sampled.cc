/**
 * @file
 * Sampled-simulation figure (beyond the paper): SMARTS-style
 * systematic sampling vs full-detail ground truth on the two largest
 * bundled mixes.  Every sampled configuration is paired with the
 * full-detail run of the same machine configuration; the tables
 * report estimate accuracy (is the ground truth inside the 95% CI,
 * and how large is the relative error) and the cycle-loop speedup
 * (full-detail cycles over cycles actually simulated in detail).
 *
 * Interesting reads: how the window/period ratio trades confidence
 * width against speedup, and whether functional warming keeps the
 * estimators unbiased at a 10:1 fast-forward ratio.
 */

#include <cmath>
#include <iostream>
#include <string>

#include "common.hh"

namespace
{

/** The full-detail label a sampled config label was derived from. */
std::string
baselineLabel(const std::string &label)
{
    const std::size_t pos = label.find("+smp");
    return pos == std::string::npos ? label : label.substr(0, pos);
}

std::string
ciCell(const cgp::sample::SampledEstimate &e, int digits)
{
    using cgp::TablePrinter;
    return TablePrinter::fixed(e.mean, digits) + " [" +
        TablePrinter::fixed(e.ciLow, digits) + ", " +
        TablePrinter::fixed(e.ciHigh, digits) + "]";
}

double
relErr(double estimate, double truth)
{
    return truth == 0.0 ? 0.0
                        : std::abs(estimate - truth) /
            std::abs(truth);
}

} // anonymous namespace

int
main()
{
    using namespace cgp;
    using namespace cgp::bench;

    const exp::CampaignRun run = runPaperCampaign("fig_sampled");

    TablePrinter acc("Sampled accuracy — estimate vs full detail");
    acc.setHeader({"workload", "config", "metric",
                   "estimate [95% CI]", "truth", "in CI",
                   "rel err"});
    TablePrinter spd("Sampled speedup — detailed cycles vs full");
    spd.setHeader({"workload", "config", "windows", "detailed cyc",
                   "full cyc", "speedup", "clock err"});

    for (const auto &w : run.workloadNames()) {
        bool any = false;
        for (const auto &c : run.configLabels()) {
            const SimResult &r = run.at(w, c);
            if (!r.sampledEnabled)
                continue;
            const SimResult *base = run.find(w, baselineLabel(c));
            if (base == nullptr || base->sampledEnabled)
                continue;
            any = true;

            struct MetricRow
            {
                const char *name;
                const sample::SampledEstimate &est;
                double truth;
                int digits;
            };
            const double truth_cpi = base->instrs == 0
                ? 0.0
                : static_cast<double>(base->cycles) /
                    static_cast<double>(base->instrs);
            const double truth_l1i = base->icacheAccesses == 0
                ? 0.0
                : static_cast<double>(base->icacheMisses) /
                    static_cast<double>(base->icacheAccesses);
            const double truth_l1d = base->dcacheAccesses == 0
                ? 0.0
                : static_cast<double>(base->dcacheMisses) /
                    static_cast<double>(base->dcacheAccesses);
            const MetricRow rows[] = {
                {"CPI", r.sampled.cpi, truth_cpi, 3},
                {"L1-I miss", r.sampled.l1iMissRate, truth_l1i, 4},
                {"L1-D miss", r.sampled.l1dMissRate, truth_l1d, 4},
            };
            for (const MetricRow &m : rows) {
                acc.addRow({w, c, m.name, ciCell(m.est, m.digits),
                            TablePrinter::fixed(m.truth, m.digits),
                            m.est.contains(m.truth) ? "yes" : "NO",
                            TablePrinter::percent(
                                relErr(m.est.mean, m.truth))});
            }

            const double detailed = static_cast<double>(
                r.sampled.detailedCycles == 0
                    ? 1
                    : r.sampled.detailedCycles);
            spd.addRow(
                {w, c, TablePrinter::num(r.sampled.windows),
                 TablePrinter::num(r.sampled.detailedCycles),
                 TablePrinter::num(base->cycles),
                 TablePrinter::fixed(
                     static_cast<double>(base->cycles) / detailed,
                     1) +
                     "x",
                 TablePrinter::percent(relErr(
                     static_cast<double>(r.cycles),
                     static_cast<double>(base->cycles)))});
        }
        if (any) {
            acc.addRule();
            spd.addRule();
        }
    }
    acc.print(std::cout);
    std::cout << "\n";
    spd.print(std::cout);

    std::cout
        << "\nExpectation: every 95% CI contains its full-detail "
           "ground truth with single-digit relative error, while "
           "the 10:1 window/period points run the detailed cycle "
           "loop at least 5x less than the full-detail baseline.\n";
    return 0;
}
