/**
 * @file
 * Workload anatomy: trace sizes, dynamic code footprint (distinct
 * I-cache lines), per-quantum footprint, steady-state vs cold
 * misses, and CGHC behaviour.  Not a paper figure — a measurement
 * aid for understanding what the simulations see.
 */

#include <iostream>
#include <unordered_set>

#include "common.hh"
#include "trace/expand.hh"

int
main()
{
    using namespace cgp;

    std::cerr << "building database workloads...\n";
    DbWorkloadSet set = WorkloadFactory::buildDbSet();

    TablePrinter t("Workload anatomy");
    t.setHeader({"workload", "events", "instrs", "calls",
                 "instr/call", "I-lines(O5)", "I-KB(O5)",
                 "I-lines(OM)", "I-KB(OM)"});

    for (const auto &w : set.workloads) {
        LayoutBuilder builder(*w.registry);
        std::uint64_t instrs = 0, calls = 0;
        std::unordered_set<Addr> lines_o5, lines_om;

        {
            const CodeImage o5 = builder.buildOriginal();
            InstructionExpander ex(*w.registry, o5, *w.trace);
            DynInst i;
            while (ex.next(i))
                lines_o5.insert(i.pc >> 5);
            instrs = ex.emittedInstrs();
            calls = ex.emittedCalls();
        }
        {
            const CodeImage om =
                builder.buildPettisHansen(*w.omProfile);
            InstructionExpander ex(*w.registry, om, *w.trace);
            DynInst i;
            while (ex.next(i))
                lines_om.insert(i.pc >> 5);
        }

        t.addRow({w.name, TablePrinter::num(w.trace->size()),
                  TablePrinter::num(instrs), TablePrinter::num(calls),
                  TablePrinter::fixed(
                      static_cast<double>(instrs) /
                          static_cast<double>(calls),
                      1),
                  TablePrinter::num(lines_o5.size()),
                  TablePrinter::fixed(
                      static_cast<double>(lines_o5.size()) * 32.0 /
                          1024.0,
                      1),
                  TablePrinter::num(lines_om.size()),
                  TablePrinter::fixed(
                      static_cast<double>(lines_om.size()) * 32.0 /
                          1024.0,
                      1)});
    }
    t.print(std::cout);

    // Conflict-vs-capacity: misses under higher associativity.
    std::cout << "\nL1I misses vs associativity (O5 | OM):\n";
    for (const auto &w : set.workloads) {
        std::cout << "  " << w.name << ":";
        for (unsigned assoc : {2u, 8u, 32u}) {
            SimConfig c = SimConfig::o5();
            c.mem.l1i.assoc = assoc;
            const SimResult r5 = runSimulation(w, c);
            SimConfig cm = SimConfig::o5Om();
            cm.mem.l1i.assoc = assoc;
            const SimResult rm = runSimulation(w, cm);
            std::cout << "  " << assoc << "way:" << r5.icacheMisses
                      << "|" << rm.icacheMisses;
        }
        std::cout << "\n";
    }

    // CGHC behaviour under CGP_4.
    std::cout << "\nCGHC behaviour (OM+CGP_4):\n";
    for (const auto &w : set.workloads) {
        const SimResult r = runSimulation(
            w, SimConfig::withCgp(LayoutKind::PettisHansen, 4));
        std::cout << "  " << w.name << ": accesses=" << r.cghcAccesses
                  << " hits=" << r.cghcHits
                  << " cghc_issued=" << r.cghc.issued
                  << " nl_issued=" << r.nl.issued
                  << " squashed=" << r.squashedPrefetches << "\n";
    }
    return 0;
}
