/**
 * @file
 * §6 future-work ablation: software CGP vs hardware CGP.
 *
 * The paper notes CGP "can be implemented entirely in software by
 * having a compiler insert prefetch instructions into the code based
 * on call graph information generated from profile executions" but
 * does not evaluate it.  This bench does: SW-CGP uses a frozen
 * profile-derived call table (no hardware, no online adaptation);
 * HW-CGP uses the 2KB+32KB CGHC.  A second table checks the §3.2
 * design note that a direct-mapped CGHC suffices by sweeping CGHC
 * associativity.
 */

#include <iostream>

#include "common.hh"

int
main()
{
    using namespace cgp;
    using namespace cgp::bench;

    std::cerr << "building database workloads...\n";
    DbWorkloadSet set = WorkloadFactory::buildDbSet();

    const std::vector<SimConfig> configs = {
        SimConfig::o5Om(),
        SimConfig::withNL(LayoutKind::PettisHansen, 4),
        SimConfig::withSoftwareCgp(LayoutKind::PettisHansen, 4),
        SimConfig::withCgp(LayoutKind::PettisHansen, 4),
    };
    const ResultMatrix m = runMatrix(set.workloads, configs);
    printCycleTable("Software CGP vs hardware CGP (§6)", m,
                    set.workloads, configs);

    TablePrinter t("I-cache misses");
    t.setHeader({"workload", "OM", "OM+NL_4", "OM+SWCGP_4",
                 "OM+CGP_4"});
    for (const auto &w : set.workloads) {
        std::vector<std::string> row{w.name};
        for (const auto &c : configs) {
            row.push_back(TablePrinter::num(
                m.at({w.name, c.describe()}).icacheMisses));
        }
        t.addRow(row);
    }
    t.print(std::cout);

    // §3.2 design note: direct-mapped CGHC vs set-associative.
    std::vector<SimConfig> assoc_configs;
    std::vector<std::string> labels;
    for (unsigned a : {1u, 2u, 4u}) {
        CghcConfig geom = CghcConfig::twoLevel2K32K();
        geom.assoc = a;
        assoc_configs.push_back(SimConfig::withCgpGeometry(
            LayoutKind::PettisHansen, 4, geom));
        labels.push_back(geom.describe());
    }
    TablePrinter at("CGHC associativity (§3.2: direct-mapped "
                    "suffices)");
    std::vector<std::string> header{"workload"};
    header.insert(header.end(), labels.begin(), labels.end());
    at.setHeader(header);
    for (const auto &w : set.workloads) {
        std::vector<std::string> row{w.name};
        double base = 0;
        for (std::size_t i = 0; i < assoc_configs.size(); ++i) {
            std::cerr << "  running " << w.name << " / " << labels[i]
                      << "...\n";
            const SimResult r = runSimulation(w, assoc_configs[i]);
            if (i == 0)
                base = static_cast<double>(r.cycles);
            row.push_back(TablePrinter::fixed(
                static_cast<double>(r.cycles) / base, 4));
        }
        at.addRow(row);
    }
    at.print(std::cout);

    std::cout << "\nExpected: SW-CGP recovers much of hardware "
                 "CGP's benefit using profile feedback alone, but "
                 "cannot adapt to runtime call sequences; CGHC "
                 "associativity barely matters, confirming the "
                 "paper's direct-mapped choice.\n";
    return 0;
}
