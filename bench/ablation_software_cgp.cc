/**
 * @file
 * §6 future-work ablation: software CGP vs hardware CGP.
 *
 * The paper notes CGP "can be implemented entirely in software by
 * having a compiler insert prefetch instructions into the code based
 * on call graph information generated from profile executions" but
 * does not evaluate it.  This bench does: SW-CGP uses a frozen
 * profile-derived call table (no hardware, no online adaptation);
 * HW-CGP uses the 2KB+32KB CGHC.  A second table checks the §3.2
 * design note that a direct-mapped CGHC suffices by sweeping CGHC
 * associativity.
 */

#include <iostream>

#include "common.hh"

int
main()
{
    using namespace cgp;
    using namespace cgp::bench;

    const exp::CampaignRun run = runPaperCampaign("ablation-swcgp");
    exp::printCycleTables(run, std::cout);

    TablePrinter t("I-cache misses");
    t.setHeader({"workload", "OM", "OM+NL_4", "OM+SWCGP_4",
                 "OM+CGP_4"});
    for (const auto &w : run.workloadNames()) {
        std::vector<std::string> row{w};
        for (const auto &c : run.configLabels()) {
            row.push_back(
                TablePrinter::num(run.at(w, c).icacheMisses));
        }
        t.addRow(row);
    }
    t.print(std::cout);

    // §3.2 design note: direct-mapped CGHC vs set-associative.
    const exp::CampaignRun assoc =
        runPaperCampaign("ablation-swcgp-assoc");
    TablePrinter at("CGHC associativity (§3.2: direct-mapped "
                    "suffices)");
    std::vector<std::string> header{"workload"};
    const std::vector<std::string> labels = assoc.configLabels();
    header.insert(header.end(), labels.begin(), labels.end());
    at.setHeader(header);
    for (const auto &w : assoc.workloadNames()) {
        std::vector<std::string> row{w};
        const double base =
            static_cast<double>(assoc.at(w, labels[0]).cycles);
        for (const auto &c : labels) {
            row.push_back(TablePrinter::fixed(
                static_cast<double>(assoc.at(w, c).cycles) / base,
                4));
        }
        at.addRow(row);
    }
    at.print(std::cout);

    std::cout << "\nExpected: SW-CGP recovers much of hardware "
                 "CGP's benefit using profile feedback alone, but "
                 "cannot adapt to runtime call sequences; CGHC "
                 "associativity barely matters, confirming the "
                 "paper's direct-mapped choice.\n";
    return 0;
}
