/**
 * @file
 * §5.6 ablation: run-ahead NL prefetching.  The paper implemented an
 * NL variant that prefetches N lines starting M lines ahead of the
 * fetched line, hoping to improve timeliness, and found it "much
 * worse than NL" on DBMS code (43 instructions between calls means
 * far-ahead lines are often never reached).  Results were not shown
 * in the paper; this binary regenerates the experiment.
 */

#include <iostream>

#include "common.hh"

int
main()
{
    using namespace cgp;
    using namespace cgp::bench;

    std::cerr << "building database workloads...\n";
    DbWorkloadSet set = WorkloadFactory::buildDbSet();

    const std::vector<SimConfig> configs = {
        SimConfig::o5Om(),
        SimConfig::withNL(LayoutKind::PettisHansen, 4),
        SimConfig::withRunAheadNL(LayoutKind::PettisHansen, 4, 2),
        SimConfig::withRunAheadNL(LayoutKind::PettisHansen, 4, 4),
        SimConfig::withRunAheadNL(LayoutKind::PettisHansen, 4, 8),
    };

    const ResultMatrix m = runMatrix(set.workloads, configs);
    printCycleTable("Run-ahead NL ablation (§5.6)", m, set.workloads,
                    configs);

    TablePrinter t("Useful prefetch fractions");
    t.setHeader({"config", "useful frac", "useless"});
    for (const auto &c : configs) {
        if (c.prefetch == PrefetchKind::None)
            continue;
        PrefetchBreakdown sum;
        for (const auto &w : set.workloads) {
            const auto p =
                m.at({w.name, c.describe()}).totalPrefetch();
            sum.issued += p.issued;
            sum.prefHits += p.prefHits;
            sum.delayedHits += p.delayedHits;
            sum.useless += p.useless;
        }
        t.addRow({c.describe(),
                  TablePrinter::percent(sum.usefulFraction()),
                  TablePrinter::num(sum.useless)});
    }
    t.print(std::cout);

    std::cout << "\nPaper reference: run-ahead NL prefetches too "
                 "many useless far-ahead lines and misses needed "
                 "near lines; overall performance is much worse "
                 "than plain NL.\n";
    return 0;
}
