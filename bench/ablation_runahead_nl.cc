/**
 * @file
 * §5.6 ablation: run-ahead NL prefetching.  The paper implemented an
 * NL variant that prefetches N lines starting M lines ahead of the
 * fetched line, hoping to improve timeliness, and found it "much
 * worse than NL" on DBMS code (43 instructions between calls means
 * far-ahead lines are often never reached).  Results were not shown
 * in the paper; this binary regenerates the experiment.
 */

#include <iostream>

#include "common.hh"

int
main()
{
    using namespace cgp;
    using namespace cgp::bench;

    const exp::CampaignRun run = runPaperCampaign("ablation-ranl");
    exp::printCycleTables(run, std::cout);

    TablePrinter t("Useful prefetch fractions");
    t.setHeader({"config", "useful frac", "useless"});
    for (const auto &c : run.configLabels()) {
        PrefetchBreakdown sum;
        for (const auto &w : run.workloadNames()) {
            const auto p = run.at(w, c).totalPrefetch();
            sum.issued += p.issued;
            sum.prefHits += p.prefHits;
            sum.delayedHits += p.delayedHits;
            sum.useless += p.useless;
        }
        if (sum.issued == 0) // the no-prefetch baseline
            continue;
        t.addRow({c, TablePrinter::percent(sum.usefulFraction()),
                  TablePrinter::num(sum.useless)});
    }
    t.print(std::cout);

    std::cout << "\nPaper reference: run-ahead NL prefetches too "
                 "many useless far-ahead lines and misses needed "
                 "near lines; overall performance is much worse "
                 "than plain NL.\n";
    return 0;
}
