/**
 * @file
 * Figure 5: Performance of five CGHC configurations — 1KB, 32KB,
 * 1KB+16KB, 2KB+32KB, infinite — running CGP_4 on the OM binary.
 *
 * Paper: the 1KB CGHC is ~12% slower than infinite; the other three
 * are close to infinite; on wisc+tpch the infinite CGHC is slightly
 * *worse* than the larger finite ones (more useless prefetches).
 */

#include <iostream>

#include "common.hh"

int
main()
{
    using namespace cgp;
    using namespace cgp::bench;

    std::cerr << "building database workloads...\n";
    DbWorkloadSet set = WorkloadFactory::buildDbSet();

    const std::vector<std::pair<const char *, CghcConfig>> geoms = {
        {"CGHC-1K", CghcConfig::oneLevel1K()},
        {"CGHC-32K", CghcConfig::oneLevel32K()},
        {"CGHC-1K+16K", CghcConfig::twoLevel1K16K()},
        {"CGHC-2K+32K", CghcConfig::twoLevel2K32K()},
        {"CGHC-Inf", CghcConfig::infiniteSize()},
    };

    std::vector<SimConfig> configs;
    for (const auto &[name, geom] : geoms) {
        (void)name;
        configs.push_back(SimConfig::withCgpGeometry(
            LayoutKind::PettisHansen, 4, geom));
    }

    // Distinguish the config labels by geometry.
    ResultMatrix m;
    TablePrinter abs("Figure 5 — CGP_4 execution cycles by CGHC size");
    TablePrinter norm(
        "Figure 5 — normalized to CGHC-Inf (lower is faster)");
    std::vector<std::string> header{"workload"};
    for (const auto &[name, geom] : geoms) {
        (void)geom;
        header.push_back(name);
    }
    abs.setHeader(header);
    norm.setHeader(header);

    for (const auto &w : set.workloads) {
        std::vector<SimResult> results;
        for (std::size_t i = 0; i < configs.size(); ++i) {
            std::cerr << "  running " << w.name << " / "
                      << geoms[i].first << "...\n";
            results.push_back(runSimulation(w, configs[i]));
        }
        const auto inf_cycles =
            static_cast<double>(results.back().cycles);
        std::vector<std::string> arow{w.name};
        std::vector<std::string> nrow{w.name};
        for (const auto &r : results) {
            arow.push_back(TablePrinter::num(r.cycles));
            nrow.push_back(TablePrinter::fixed(
                static_cast<double>(r.cycles) / inf_cycles, 3));
        }
        abs.addRow(arow);
        norm.addRow(nrow);
    }
    abs.print(std::cout);
    std::cout << "\n";
    norm.print(std::cout);
    std::cout << "\nPaper reference: CGHC-1K ~1.12x the infinite "
                 "CGHC's cycles; CGHC-2K+32K and CGHC-32K within a "
                 "few percent of infinite; on wisc+tpch the infinite "
                 "CGHC is slightly worse than the best finite "
                 "configurations.\n";
    return 0;
}
