/**
 * @file
 * Figure 5: Performance of five CGHC configurations — 1KB, 32KB,
 * 1KB+16KB, 2KB+32KB, infinite — running CGP_4 on the OM binary.
 *
 * Paper: the 1KB CGHC is ~12% slower than infinite; the other three
 * are close to infinite; on wisc+tpch the infinite CGHC is slightly
 * *worse* than the larger finite ones (more useless prefetches).
 */

#include <iostream>

#include "common.hh"

int
main()
{
    using namespace cgp;
    using namespace cgp::bench;

    const exp::CampaignRun run = runPaperCampaign("fig5");

    // Normalize to CGHC-Inf (the last axis point).
    exp::printCycleTables(run, std::cout,
                          run.configLabels().size() - 1);

    std::cout << "\nPaper reference: CGHC-1K ~1.12x the infinite "
                 "CGHC's cycles; CGHC-2K+32K and CGHC-32K within a "
                 "few percent of infinite; on wisc+tpch the infinite "
                 "CGHC is slightly worse than the best finite "
                 "configurations.\n";
    return 0;
}
