/**
 * @file
 * Call graph statistics (paper §3.2): the ATOM measurement that
 * motivated the 8-slot CGHC entry — "80% of the functions have
 * calls to fewer than 8 distinct functions" — recomputed over our
 * workloads' dynamic call graphs.
 */

#include <iostream>

#include "codegen/profile.hh"
#include "common.hh"

int
main()
{
    using namespace cgp;

    std::cerr << "building database workloads...\n";
    DbWorkloadSet set = WorkloadFactory::buildDbSet();

    const CallGraphAnalyzer dbms(*set.omProfile);
    TablePrinter t("Call graph statistics (paper §3.2)");
    t.setHeader({"program", "calling funcs", "<8 distinct callees",
                 "max callees"});
    t.addRow({"dbms (wisc-prof + wisc+tpch profile)",
              TablePrinter::num(dbms.callerCount()),
              TablePrinter::percent(
                  dbms.fractionWithFewerCalleesThan(8)),
              TablePrinter::num(dbms.maxDistinctCallees())});

    for (const auto &w : WorkloadFactory::buildCpu2000Suite()) {
        const CallGraphAnalyzer a(*w.omProfile);
        t.addRow({w.name, TablePrinter::num(a.callerCount()),
                  TablePrinter::percent(
                      a.fractionWithFewerCalleesThan(8)),
                  TablePrinter::num(a.maxDistinctCallees())});
    }
    t.print(std::cout);

    std::cout << "\nPaper reference: ~80% of functions call fewer "
                 "than 8 distinct functions, justifying 8 callee "
                 "slots per CGHC entry (one 32-byte line).\n";
    return 0;
}
