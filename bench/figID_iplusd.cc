/**
 * @file
 * Figure ID (beyond the paper): I-side CGP and the D-side combined
 * engine sharing the L2 port.  Four points per workload — CGP alone,
 * D-combined alone, both un-throttled, both behind the accuracy-gated
 * arbiter — on a Wisconsin mix and the Wisconsin+TPC-H mix.
 *
 * The table of interest is the wasted-traffic one: throttling should
 * cut squashed + duplicate-merged prefetches versus the un-throttled
 * I+D point without giving up useful prefetches.
 */

#include <cstdint>
#include <iostream>

#include "common.hh"

namespace
{

std::uint64_t
usefulCount(const cgp::SimResult &r)
{
    return r.nl.prefHits + r.nl.delayedHits + r.cghc.prefHits +
        r.cghc.delayedHits + r.dpf.prefHits + r.dpf.delayedHits;
}

std::uint64_t
wastedCount(const cgp::SimResult &r)
{
    return r.squashedPrefetches + r.dSquashedPrefetches +
        r.arbNl.duplicateMerged + r.arbCghc.duplicateMerged +
        r.arbDpf.duplicateMerged;
}

} // anonymous namespace

int
main()
{
    using namespace cgp;
    using namespace cgp::bench;

    const exp::CampaignRun run = runPaperCampaign("figID_interaction");

    printCycleTable("Figure ID", toMatrix(run), run.workloadNames(),
                    run.configLabels());
    std::cout << "\n";

    TablePrinter t("Figure ID — prefetch traffic");
    t.setHeader({"workload", "config", "issued I", "issued D",
                 "useful", "squashed+dup", "bus lines"});
    for (const auto &w : run.workloadNames()) {
        for (const auto &c : run.configLabels()) {
            const auto &r = run.at(w, c);
            t.addRow({w, c,
                      TablePrinter::num(r.nl.issued + r.cghc.issued),
                      TablePrinter::num(r.dpf.issued),
                      TablePrinter::num(usefulCount(r)),
                      TablePrinter::num(wastedCount(r)),
                      TablePrinter::num(r.busLines)});
        }
        t.addRule();
    }
    t.print(std::cout);
    std::cout << "\n";

    TablePrinter a("Figure ID — arbiter accounting (throttled point)");
    a.setHeader({"workload", "engine", "issued", "deferred",
                 "dropped", "dup-merged"});
    for (const auto &w : run.workloadNames()) {
        for (const auto &c : run.configLabels()) {
            const auto &r = run.at(w, c);
            const auto row = [&](const char *name,
                                 const ArbiterBreakdown &b) {
                if (!b.any())
                    return;
                a.addRow({w, name, TablePrinter::num(b.issued),
                          TablePrinter::num(b.deferred),
                          TablePrinter::num(b.dropped),
                          TablePrinter::num(b.duplicateMerged)});
            };
            row("NL", r.arbNl);
            row("CGHC", r.arbCghc);
            row("D", r.arbDpf);
        }
        a.addRule();
    }
    a.print(std::cout);

    std::cout
        << "\nExpectation: the throttled I+D point shows fewer "
           "squashed+duplicate prefetches than the un-throttled one "
           "on wisc-large-1, while keeping at least 95% of its "
           "useful-prefetch count.\n";
    return 0;
}
