/**
 * @file
 * Figure 8: prefetch effectiveness of NL_2, NL_4, CGP_2 and CGP_4
 * on the OM binary: issued prefetches split into pref hits (line
 * resident at next reference), delayed hits (still in flight), and
 * useless (evicted or never referenced); plus L1<->L2 bus traffic.
 */

#include <iostream>

#include "common.hh"

int
main()
{
    using namespace cgp;
    using namespace cgp::bench;

    const exp::CampaignRun run = runPaperCampaign("fig8");

    TablePrinter t("Figure 8 — prefetch classification (all "
                   "workloads summed)");
    t.setHeader({"config", "issued", "pref hits", "delayed hits",
                 "useless", "useful frac", "bus lines"});
    for (const auto &c : run.configLabels()) {
        PrefetchBreakdown sum;
        std::uint64_t bus = 0;
        for (const auto &w : run.workloadNames()) {
            const auto &r = run.at(w, c);
            const auto p = r.totalPrefetch();
            sum.issued += p.issued;
            sum.prefHits += p.prefHits;
            sum.delayedHits += p.delayedHits;
            sum.useless += p.useless;
            bus += r.busLines;
        }
        t.addRow({c, TablePrinter::num(sum.issued),
                  TablePrinter::num(sum.prefHits),
                  TablePrinter::num(sum.delayedHits),
                  TablePrinter::num(sum.useless),
                  TablePrinter::percent(sum.usefulFraction()),
                  TablePrinter::num(bus)});
    }
    t.print(std::cout);

    TablePrinter pw("Figure 8 — per-workload breakdown");
    pw.setHeader({"workload", "config", "pref hits", "delayed hits",
                  "useless"});
    for (const auto &w : run.workloadNames()) {
        for (const auto &c : run.configLabels()) {
            const auto p = run.at(w, c).totalPrefetch();
            pw.addRow({w, c, TablePrinter::num(p.prefHits),
                       TablePrinter::num(p.delayedHits),
                       TablePrinter::num(p.useless)});
        }
        pw.addRule();
    }
    pw.print(std::cout);

    std::cout << "\nPaper reference: CGP issues ~3% more useful "
                 "prefetches than NL with comparable useless counts; "
                 "CGP_4's delayed hits are fewer than NL_4's "
                 "(better timeliness).\n";
    return 0;
}
