/**
 * @file
 * Figure 8: prefetch effectiveness of NL_2, NL_4, CGP_2 and CGP_4
 * on the OM binary: issued prefetches split into pref hits (line
 * resident at next reference), delayed hits (still in flight), and
 * useless (evicted or never referenced); plus L1<->L2 bus traffic.
 */

#include <iostream>

#include "common.hh"

int
main()
{
    using namespace cgp;
    using namespace cgp::bench;

    std::cerr << "building database workloads...\n";
    DbWorkloadSet set = WorkloadFactory::buildDbSet();

    const std::vector<SimConfig> configs = {
        SimConfig::withNL(LayoutKind::PettisHansen, 2),
        SimConfig::withNL(LayoutKind::PettisHansen, 4),
        SimConfig::withCgp(LayoutKind::PettisHansen, 2),
        SimConfig::withCgp(LayoutKind::PettisHansen, 4),
    };

    const ResultMatrix m = runMatrix(set.workloads, configs);

    TablePrinter t("Figure 8 — prefetch classification (all "
                   "workloads summed)");
    t.setHeader({"config", "issued", "pref hits", "delayed hits",
                 "useless", "useful frac", "bus lines"});
    for (const auto &c : configs) {
        PrefetchBreakdown sum;
        std::uint64_t bus = 0;
        for (const auto &w : set.workloads) {
            const auto &r = m.at({w.name, c.describe()});
            const auto p = r.totalPrefetch();
            sum.issued += p.issued;
            sum.prefHits += p.prefHits;
            sum.delayedHits += p.delayedHits;
            sum.useless += p.useless;
            bus += r.busLines;
        }
        t.addRow({c.describe(), TablePrinter::num(sum.issued),
                  TablePrinter::num(sum.prefHits),
                  TablePrinter::num(sum.delayedHits),
                  TablePrinter::num(sum.useless),
                  TablePrinter::percent(sum.usefulFraction()),
                  TablePrinter::num(bus)});
    }
    t.print(std::cout);

    TablePrinter pw("Figure 8 — per-workload breakdown");
    pw.setHeader({"workload", "config", "pref hits", "delayed hits",
                  "useless"});
    for (const auto &w : set.workloads) {
        for (const auto &c : configs) {
            const auto p =
                m.at({w.name, c.describe()}).totalPrefetch();
            pw.addRow({w.name, c.describe(),
                       TablePrinter::num(p.prefHits),
                       TablePrinter::num(p.delayedHits),
                       TablePrinter::num(p.useless)});
        }
        pw.addRule();
    }
    pw.print(std::cout);

    std::cout << "\nPaper reference: CGP issues ~3% more useful "
                 "prefetches than NL with comparable useless counts; "
                 "CGP_4's delayed hits are fewer than NL_4's "
                 "(better timeliness).\n";
    return 0;
}
