/**
 * @file
 * Figure 7: I-cache miss comparison of O5, OM, OM+NL and OM+CGP.
 *
 * Paper: OM cuts misses ~21% vs O5; OM+NL ~77%; OM+CGP ~87%
 * (~83% vs the OM baseline per the abstract).
 */

#include <iostream>

#include "common.hh"

int
main()
{
    using namespace cgp;
    using namespace cgp::bench;

    const exp::CampaignRun run = runPaperCampaign("fig7");

    TablePrinter t("Figure 7 — L1 I-cache demand misses");
    t.setHeader({"workload", "O5", "O5+OM", "OM+NL_4", "OM+CGP_4",
                 "OM/O5", "NL/O5", "CGP/O5"});
    double om_sum = 0, nl_sum = 0, cgp_sum = 0, o5_sum = 0;
    for (const auto &w : run.workloadNames()) {
        const auto &o5 = run.at(w, "O5");
        const auto &om = run.at(w, "O5+OM");
        const auto &nl = run.at(w, "O5+OM+NL_4");
        const auto &cg = run.at(w, "O5+OM+CGP_4");
        o5_sum += static_cast<double>(o5.icacheMisses);
        om_sum += static_cast<double>(om.icacheMisses);
        nl_sum += static_cast<double>(nl.icacheMisses);
        cgp_sum += static_cast<double>(cg.icacheMisses);
        const auto frac = [&o5](std::uint64_t v) {
            return TablePrinter::fixed(
                static_cast<double>(v) /
                    static_cast<double>(o5.icacheMisses),
                3);
        };
        t.addRow({w, TablePrinter::num(o5.icacheMisses),
                  TablePrinter::num(om.icacheMisses),
                  TablePrinter::num(nl.icacheMisses),
                  TablePrinter::num(cg.icacheMisses),
                  frac(om.icacheMisses), frac(nl.icacheMisses),
                  frac(cg.icacheMisses)});
    }
    t.print(std::cout);

    std::cout << "\nAggregate miss reduction vs O5 "
                 "(paper: OM ~21%, OM+NL ~77%, OM+CGP ~87%):\n";
    std::cout << "  OM:     "
              << TablePrinter::percent(1.0 - om_sum / o5_sum) << "\n";
    std::cout << "  OM+NL:  "
              << TablePrinter::percent(1.0 - nl_sum / o5_sum) << "\n";
    std::cout << "  OM+CGP: "
              << TablePrinter::percent(1.0 - cgp_sum / o5_sum)
              << "\n";
    return 0;
}
