/**
 * @file
 * Design-space ablation for CGP beyond the paper's figures:
 * prefetch depth N sweep (the paper only shows N=2 and N=4), and
 * CGP without OM vs with OM (quantifying §5.2's claim that CGP
 * alone — no recompilation — captures most of the benefit).
 */

#include <iostream>

#include "common.hh"

int
main()
{
    using namespace cgp;
    using namespace cgp::bench;

    std::cerr << "building database workloads...\n";
    DbWorkloadSet set = WorkloadFactory::buildDbSet();

    // Depth sweep on the OM binary.
    std::vector<SimConfig> depth_configs;
    for (unsigned n : {1u, 2u, 4u, 6u, 8u}) {
        depth_configs.push_back(
            SimConfig::withCgp(LayoutKind::PettisHansen, n));
    }
    const ResultMatrix dm = runMatrix(set.workloads, depth_configs);
    printCycleTable("CGP_N depth sweep (OM binary)", dm,
                    set.workloads, depth_configs);

    // CGP without recompilation (O5) vs with OM.
    const std::vector<SimConfig> layout_configs = {
        SimConfig::o5(),
        SimConfig::withCgp(LayoutKind::Original, 4),
        SimConfig::withCgp(LayoutKind::PettisHansen, 4),
    };
    const ResultMatrix lm = runMatrix(set.workloads, layout_configs);
    printCycleTable("CGP without OM (legacy binaries, §5.2)", lm,
                    set.workloads, layout_configs);

    std::cout << "\nPaper reference: CGP_4 alone achieves ~40% over "
                 "O5 (no source recompilation needed); adding OM "
                 "raises it to ~45%.\n";
    return 0;
}
