/**
 * @file
 * Design-space ablation for CGP beyond the paper's figures:
 * prefetch depth N sweep (the paper only shows N=2 and N=4), and
 * CGP without OM vs with OM (quantifying §5.2's claim that CGP
 * alone — no recompilation — captures most of the benefit).
 */

#include <iostream>

#include "common.hh"

int
main()
{
    using namespace cgp;
    using namespace cgp::bench;

    // Depth sweep on the OM binary.
    const exp::CampaignRun depth =
        runPaperCampaign("ablation-design-depth");
    exp::printCycleTables(depth, std::cout);

    // CGP without recompilation (O5) vs with OM.
    const exp::CampaignRun layout =
        runPaperCampaign("ablation-design-layout");
    exp::printCycleTables(layout, std::cout);

    std::cout << "\nPaper reference: CGP_4 alone achieves ~40% over "
                 "O5 (no source recompilation needed); adding OM "
                 "raises it to ~45%.\n";
    return 0;
}
