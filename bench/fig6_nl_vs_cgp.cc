/**
 * @file
 * Figure 6: Performance comparison of O5, OM, OM+NL_2, OM+NL_4,
 * OM+CGP_2, OM+CGP_4, and a perfect I-cache.
 *
 * Paper: CGP outperforms NL by ~7% and lands within 19% of the
 * perfect I-cache; §5.4 also reports an average of ~43 instructions
 * between successive function calls for the DBMS workloads, printed
 * here from the live traces.
 */

#include <iostream>

#include "common.hh"

int
main()
{
    using namespace cgp;
    using namespace cgp::bench;

    std::cerr << "building database workloads...\n";
    DbWorkloadSet set = WorkloadFactory::buildDbSet();

    const std::vector<SimConfig> configs = {
        SimConfig::o5(),
        SimConfig::o5Om(),
        SimConfig::withNL(LayoutKind::PettisHansen, 2),
        SimConfig::withNL(LayoutKind::PettisHansen, 4),
        SimConfig::withCgp(LayoutKind::PettisHansen, 2),
        SimConfig::withCgp(LayoutKind::PettisHansen, 4),
        SimConfig::perfectICacheOn(LayoutKind::PettisHansen),
    };

    const ResultMatrix m = runMatrix(set.workloads, configs);
    printCycleTable("Figure 6", m, set.workloads, configs);

    std::cout << "\nGeometric-mean comparisons (paper reference):\n";
    std::cout << "  OM+CGP_4 over OM+NL_4:      "
              << TablePrinter::fixed(
                     geomeanSpeedup(m, set.workloads, configs[3],
                                    configs[5]),
                     3)
              << "  (paper ~1.07)\n";
    std::cout << "  perf-Icache over OM+CGP_4:  "
              << TablePrinter::fixed(
                     geomeanSpeedup(m, set.workloads, configs[5],
                                    configs[6]),
                     3)
              << "  (paper ~1.19)\n";

    std::cout << "\nInstructions between successive calls "
                 "(paper ~43):\n";
    for (const auto &w : set.workloads) {
        const auto &r = m.at({w.name, configs[0].describe()});
        std::cout << "  " << w.name << ": "
                  << TablePrinter::fixed(r.instrsPerCall, 1) << "\n";
    }
    return 0;
}
