/**
 * @file
 * Figure 6: Performance comparison of O5, OM, OM+NL_2, OM+NL_4,
 * OM+CGP_2, OM+CGP_4, and a perfect I-cache.
 *
 * Paper: CGP outperforms NL by ~7% and lands within 19% of the
 * perfect I-cache; §5.4 also reports an average of ~43 instructions
 * between successive function calls for the DBMS workloads, printed
 * here from the live traces.
 */

#include <iostream>

#include "common.hh"

int
main()
{
    using namespace cgp;
    using namespace cgp::bench;

    const exp::CampaignRun run = runPaperCampaign("fig6");
    exp::printCycleTables(run, std::cout);

    std::cout << "\nGeometric-mean comparisons (paper reference):\n";
    std::cout << "  OM+CGP_4 over OM+NL_4:      "
              << TablePrinter::fixed(
                     exp::geomeanSpeedup(run, "O5+OM+NL_4",
                                         "O5+OM+CGP_4"),
                     3)
              << "  (paper ~1.07)\n";
    std::cout << "  perf-Icache over OM+CGP_4:  "
              << TablePrinter::fixed(
                     exp::geomeanSpeedup(run, "O5+OM+CGP_4",
                                         "O5+OM+perf-Icache"),
                     3)
              << "  (paper ~1.19)\n";

    std::cout << "\nInstructions between successive calls "
                 "(paper ~43):\n";
    for (const auto &w : run.workloadNames()) {
        const SimResult &r = run.at(w, "O5");
        std::cout << "  " << w << ": "
                  << TablePrinter::fixed(r.instrsPerCall, 1) << "\n";
    }
    return 0;
}
