/**
 * @file
 * Figure 9: CGP_4 prefetches split by issuing mechanism — the
 * embedded NL prefetcher (within functions) vs the CGHC (across
 * calls/returns).
 *
 * Paper: ~40% of the NL-issued prefetches are useful vs ~77% of the
 * CGHC-issued ones, and 82% of CGP's useless prefetches come from
 * its NL part.
 */

#include <iostream>

#include "common.hh"

int
main()
{
    using namespace cgp;
    using namespace cgp::bench;

    const exp::CampaignRun run = runPaperCampaign("fig9");

    TablePrinter t("Figure 9 — CGP_4 prefetches by source");
    t.setHeader({"workload", "source", "issued", "pref hits",
                 "delayed hits", "useless", "useful frac"});

    PrefetchBreakdown nl_sum, cghc_sum;
    for (const auto &w : run.workloadNames()) {
        const SimResult &r = run.at(w, "O5+OM+CGP_4");
        const auto add_row = [&t, &w](const char *src,
                                      const PrefetchBreakdown &p) {
            t.addRow({w, src, TablePrinter::num(p.issued),
                      TablePrinter::num(p.prefHits),
                      TablePrinter::num(p.delayedHits),
                      TablePrinter::num(p.useless),
                      TablePrinter::percent(p.usefulFraction())});
        };
        add_row("NL", r.nl);
        add_row("CGHC", r.cghc);
        t.addRule();
        nl_sum.issued += r.nl.issued;
        nl_sum.prefHits += r.nl.prefHits;
        nl_sum.delayedHits += r.nl.delayedHits;
        nl_sum.useless += r.nl.useless;
        cghc_sum.issued += r.cghc.issued;
        cghc_sum.prefHits += r.cghc.prefHits;
        cghc_sum.delayedHits += r.cghc.delayedHits;
        cghc_sum.useless += r.cghc.useless;
    }
    t.addRow({"TOTAL", "NL", TablePrinter::num(nl_sum.issued),
              TablePrinter::num(nl_sum.prefHits),
              TablePrinter::num(nl_sum.delayedHits),
              TablePrinter::num(nl_sum.useless),
              TablePrinter::percent(nl_sum.usefulFraction())});
    t.addRow({"TOTAL", "CGHC", TablePrinter::num(cghc_sum.issued),
              TablePrinter::num(cghc_sum.prefHits),
              TablePrinter::num(cghc_sum.delayedHits),
              TablePrinter::num(cghc_sum.useless),
              TablePrinter::percent(cghc_sum.usefulFraction())});
    t.print(std::cout);

    const double useless_total = static_cast<double>(
        nl_sum.useless + cghc_sum.useless);
    std::cout << "\nUseless prefetches issued by the NL part: "
              << TablePrinter::percent(
                     useless_total == 0
                         ? 0.0
                         : static_cast<double>(nl_sum.useless) /
                               useless_total)
              << "  (paper ~82%)\n";
    std::cout << "NL useful fraction (paper ~40%):   "
              << TablePrinter::percent(nl_sum.usefulFraction())
              << "\n";
    std::cout << "CGHC useful fraction (paper ~77%): "
              << TablePrinter::percent(cghc_sum.usefulFraction())
              << "\n";
    return 0;
}
