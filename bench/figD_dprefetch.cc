/**
 * @file
 * Figure D (beyond the paper): data-side prefetching on the L1-D
 * path.  Compares no-dprefetch against stride, miss-correlation,
 * DB-semantic, and the combined engine on a Wisconsin mix and the
 * Wisconsin+TPC-H mix: L1-D demand misses, plus issued D-prefetches
 * split into pref hits / delayed hits / useless.
 */

#include <iostream>

#include "common.hh"

int
main()
{
    using namespace cgp;
    using namespace cgp::bench;

    const exp::CampaignRun run = runPaperCampaign("figD_dstall");

    printCycleTable("Figure D", toMatrix(run), run.workloadNames(),
                    run.configLabels());
    std::cout << "\n";

    TablePrinter t("Figure D — L1-D demand misses");
    t.setHeader({"workload", "config", "D$ accesses", "D$ misses",
                 "vs none", "L2 misses"});
    for (const auto &w : run.workloadNames()) {
        const auto base = static_cast<double>(
            run.at(w, run.configLabels().front()).dcacheMisses);
        for (const auto &c : run.configLabels()) {
            const auto &r = run.at(w, c);
            t.addRow({w, c, TablePrinter::num(r.dcacheAccesses),
                      TablePrinter::num(r.dcacheMisses),
                      base > 0
                          ? TablePrinter::fixed(
                                static_cast<double>(r.dcacheMisses)
                                    / base,
                                3)
                          : "-",
                      TablePrinter::num(r.l2Misses)});
        }
        t.addRule();
    }
    t.print(std::cout);

    TablePrinter p("Figure D — D-prefetch classification");
    p.setHeader({"workload", "config", "issued", "pref hits",
                 "delayed hits", "useless", "useful frac",
                 "squashed"});
    for (const auto &w : run.workloadNames()) {
        for (const auto &c : run.configLabels()) {
            const auto &r = run.at(w, c);
            if (r.dpf.issued == 0)
                continue;
            p.addRow({w, c, TablePrinter::num(r.dpf.issued),
                      TablePrinter::num(r.dpf.prefHits),
                      TablePrinter::num(r.dpf.delayedHits),
                      TablePrinter::num(r.dpf.useless),
                      TablePrinter::percent(r.dpf.usefulFraction()),
                      TablePrinter::num(r.dSquashedPrefetches)});
        }
        p.addRule();
    }
    p.print(std::cout);

    std::cout << "\nExpectation: the combined engine cuts L1-D "
                 "demand misses below the no-dprefetch baseline on "
                 "both workloads; semantic hints cover pointer-chasing "
                 "B-tree descents that stride cannot.\n";
    return 0;
}
