/**
 * @file
 * Shared helpers for the per-figure benchmark binaries — now a thin
 * adapter over the src/exp campaign engine.  Each binary runs a
 * named campaign from the paper registry: jobs execute in parallel
 * on the work-stealing pool (results are deterministic regardless of
 * thread count), per-job progress goes through util/logging with a
 * [campaign:job workload/config] prefix, a BENCH_<name>.json
 * artifact is written next to the paper-style tables, and when
 * CGP_RUN_DIR is set the run is resumable after a kill.
 *
 * Environment knobs:
 *   CGP_BENCH_THREADS  worker threads (default: hardware)
 *   CGP_RUN_DIR        parent dir for resumable run dirs (default off)
 *   CGP_ARTIFACT_DIR   where BENCH_*.json goes (default ".")
 */

#ifndef CGP_BENCH_COMMON_HH
#define CGP_BENCH_COMMON_HH

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "exp/artifact.hh"
#include "exp/campaigns.hh"
#include "exp/engine.hh"
#include "harness/simulator.hh"
#include "harness/workload.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace cgp::bench
{

/** Results keyed by (workload, config-label). */
using ResultMatrix =
    std::map<std::pair<std::string, std::string>, SimResult>;

inline unsigned
envThreads()
{
    if (const char *env = std::getenv("CGP_BENCH_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<unsigned>(v);
        cgp_warn("ignoring bad CGP_BENCH_THREADS value '", env, "'");
    }
    return 0; // hardware concurrency
}

inline ResultMatrix
toMatrix(const exp::CampaignRun &run)
{
    ResultMatrix m;
    for (const exp::JobSpec &j : run.jobs) {
        m.emplace(std::make_pair(j.workload, j.label),
                  run.results[j.index]);
    }
    return m;
}

/**
 * Run a campaign from the paper registry with the engine, sharing
 * one workload bank across all campaigns of the process, and write
 * its BENCH_<name>.json artifact.
 */
inline exp::CampaignRun
runPaperCampaign(const std::string &name)
{
    static exp::PaperWorkloadBank bank;
    const exp::CampaignSpec spec = exp::paperCampaign(name);

    exp::EngineOptions opts;
    opts.threads = envThreads();
    if (const char *dir = std::getenv("CGP_RUN_DIR"))
        opts.runDir = std::string(dir) + "/" + name;

    const exp::CampaignRun run =
        exp::runCampaign(spec, bank, opts);

    std::string artifact_dir = ".";
    if (const char *dir = std::getenv("CGP_ARTIFACT_DIR"))
        artifact_dir = dir;
    const std::string artifact =
        artifact_dir + "/BENCH_" + name + ".json";
    exp::writeBenchJson(artifact, run);
    cgp_inform("[", name, "] ", run.executed, " jobs run, ",
               run.skipped, " resumed, ", run.threadsUsed,
               " threads, ", TablePrinter::fixed(run.wallSeconds, 1),
               "s; artifact ", artifact);
    return run;
}

/**
 * Run every config against every workload (legacy helper, kept for
 * downstream users).  Executes through the engine: parallel, with
 * per-job logging instead of raw interleaved std::cerr writes.
 */
inline ResultMatrix
runMatrix(const std::vector<Workload> &workloads,
          const std::vector<SimConfig> &configs, bool verbose = true)
{
    exp::CampaignSpec spec;
    spec.name = "adhoc";
    spec.title = "ad-hoc matrix";
    for (const Workload &w : workloads)
        spec.workloads.push_back(w.name);
    spec.explicitConfigs = configs;

    exp::InMemoryProvider provider(workloads);
    exp::EngineOptions opts;
    opts.threads = envThreads();
    opts.verbose = verbose;
    return toMatrix(exp::runCampaign(spec, provider, opts));
}

/**
 * Print execution cycles: one row per workload, one column per
 * config, plus a view normalized to config @p normIndex (= 1.00,
 * smaller is faster) matching the paper's bar charts.
 */
inline void
printCycleTable(const std::string &title, const ResultMatrix &m,
                const std::vector<std::string> &workloads,
                const std::vector<std::string> &configs,
                std::size_t normIndex = 0)
{
    TablePrinter abs(title + " — execution cycles");
    TablePrinter norm(title + " — normalized to " +
                      configs[normIndex] + " (lower is faster)");
    std::vector<std::string> header{"workload"};
    for (const auto &c : configs)
        header.push_back(c);
    abs.setHeader(header);
    norm.setHeader(header);

    for (const auto &w : workloads) {
        std::vector<std::string> arow{w};
        std::vector<std::string> nrow{w};
        const auto base = static_cast<double>(
            m.at({w, configs[normIndex]}).cycles);
        for (const auto &c : configs) {
            const auto &r = m.at({w, c});
            arow.push_back(TablePrinter::num(r.cycles));
            nrow.push_back(TablePrinter::fixed(
                static_cast<double>(r.cycles) / base, 3));
        }
        abs.addRow(arow);
        norm.addRow(nrow);
    }
    abs.print(std::cout);
    std::cout << "\n";
    norm.print(std::cout);
}

} // namespace cgp::bench

#endif // CGP_BENCH_COMMON_HH
