/**
 * @file
 * Shared helpers for the per-figure benchmark binaries: run a matrix
 * of (workload x config) simulations and print paper-style tables
 * (absolute cycles plus bars normalized the way the paper plots
 * them).
 */

#ifndef CGP_BENCH_COMMON_HH
#define CGP_BENCH_COMMON_HH

#include <cmath>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "harness/simulator.hh"
#include "harness/workload.hh"
#include "util/table.hh"

namespace cgp::bench
{

/** Results keyed by (workload, config-label). */
using ResultMatrix =
    std::map<std::pair<std::string, std::string>, SimResult>;

/** Run every config against every workload. */
inline ResultMatrix
runMatrix(const std::vector<Workload> &workloads,
          const std::vector<SimConfig> &configs, bool verbose = true)
{
    ResultMatrix m;
    for (const auto &w : workloads) {
        for (const auto &c : configs) {
            if (verbose) {
                std::cerr << "  running " << w.name << " / "
                          << c.describe() << "...\n";
            }
            SimResult r = runSimulation(w, c);
            m.emplace(std::make_pair(w.name, r.config), std::move(r));
        }
    }
    return m;
}

/**
 * Print execution cycles: one row per workload, one column per
 * config, plus a normalized view (first config = 1.00, smaller is
 * faster) matching the paper's bar charts.
 */
inline void
printCycleTable(const std::string &title, const ResultMatrix &m,
                const std::vector<Workload> &workloads,
                const std::vector<SimConfig> &configs)
{
    TablePrinter abs(title + " — execution cycles");
    TablePrinter norm(title + " — normalized to " +
                      configs.front().describe() +
                      " (lower is faster)");
    std::vector<std::string> header{"workload"};
    for (const auto &c : configs)
        header.push_back(c.describe());
    abs.setHeader(header);
    norm.setHeader(header);

    for (const auto &w : workloads) {
        std::vector<std::string> arow{w.name};
        std::vector<std::string> nrow{w.name};
        const auto base = static_cast<double>(
            m.at({w.name, configs.front().describe()}).cycles);
        for (const auto &c : configs) {
            const auto &r = m.at({w.name, c.describe()});
            arow.push_back(TablePrinter::num(r.cycles));
            nrow.push_back(TablePrinter::fixed(
                static_cast<double>(r.cycles) / base, 3));
        }
        abs.addRow(arow);
        norm.addRow(nrow);
    }
    abs.print(std::cout);
    std::cout << "\n";
    norm.print(std::cout);
}

/** Geometric-mean speedup of config b over config a. */
inline double
geomeanSpeedup(const ResultMatrix &m,
               const std::vector<Workload> &workloads,
               const SimConfig &a, const SimConfig &b)
{
    double log_sum = 0.0;
    std::size_t n = 0;
    for (const auto &w : workloads) {
        const auto ca =
            static_cast<double>(m.at({w.name, a.describe()}).cycles);
        const auto cb =
            static_cast<double>(m.at({w.name, b.describe()}).cycles);
        log_sum += std::log(ca / cb);
        ++n;
    }
    return n == 0 ? 1.0 : std::exp(log_sum / static_cast<double>(n));
}

} // namespace cgp::bench

#endif // CGP_BENCH_COMMON_HH
