/**
 * @file
 * Microbenchmarks (google-benchmark) of the simulator's hot
 * components: CGHC accesses, cache lookups, branch prediction, and
 * trace expansion throughput.  These bound the simulator's own
 * speed, not the modeled machine's.
 */

#include <benchmark/benchmark.h>

#include "branch/predictor.hh"
#include "codegen/layout.hh"
#include "codegen/registry.hh"
#include "mem/cache.hh"
#include "prefetch/cghc.hh"
#include "trace/expand.hh"
#include "trace/recorder.hh"
#include "util/rng.hh"

#include <sstream>

#include "db/btree.hh"
#include "db/heapfile.hh"
#include "trace/interleave.hh"
#include "trace/serialize.hh"

namespace
{

void
BM_CghcCallAccess(benchmark::State &state)
{
    using namespace cgp;
    Cghc cghc(CghcConfig::twoLevel2K32K());
    Rng rng(42);
    std::vector<Addr> funcs;
    for (int i = 0; i < 256; ++i)
        funcs.push_back(0x400000 + static_cast<Addr>(i) * 352);
    std::size_t i = 0;
    for (auto _ : state) {
        const Addr callee = funcs[i % funcs.size()];
        const Addr caller = funcs[(i * 7 + 3) % funcs.size()];
        benchmark::DoNotOptimize(cghc.callPrefetchAccess(callee));
        cghc.callUpdateAccess(caller, callee);
        ++i;
    }
}
BENCHMARK(BM_CghcCallAccess);

void
BM_CacheAccess(benchmark::State &state)
{
    using namespace cgp;
    CacheConfig cfg{"l1i", 32 * 1024, 2, 32, 1};
    Cache cache(cfg, nullptr, nullptr);
    Rng rng(7);
    Cycle now = 0;
    for (auto _ : state) {
        const Addr addr = 0x400000 + (rng.next() & 0xffff);
        benchmark::DoNotOptimize(
            cache.access(addr, ++now, AccessSource::DemandFetch,
                         false));
        cache.tick(now);
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_BranchPredict(benchmark::State &state)
{
    using namespace cgp;
    BranchUnit bu(BranchPredictorConfig{});
    Rng rng(3);
    for (auto _ : state) {
        const Addr pc = 0x400000 + ((rng.next() & 0xff) << 2);
        const bool taken = rng.nextBool(0.6);
        benchmark::DoNotOptimize(
            bu.predictConditional(pc, taken, pc + 64));
    }
}
BENCHMARK(BM_BranchPredict);

void
BM_TraceExpansion(benchmark::State &state)
{
    using namespace cgp;
    FunctionRegistry reg;
    const FunctionId a = reg.declare("a", FunctionTraits::medium());
    const FunctionId b = reg.declare("b", FunctionTraits::small());

    TraceBuffer trace;
    TraceRecorder rec(trace);
    rec.call(a);
    for (int i = 0; i < 1000; ++i) {
        rec.work(30);
        rec.call(b);
        rec.work(20);
        rec.ret();
        rec.branch(i % 3 == 0);
    }
    rec.ret();

    LayoutBuilder builder(reg);
    const CodeImage image = builder.buildOriginal();

    for (auto _ : state) {
        InstructionExpander ex(reg, image, trace);
        DynInst inst;
        std::uint64_t n = 0;
        while (ex.next(inst))
            ++n;
        benchmark::DoNotOptimize(n);
        state.SetItemsProcessed(
            state.items_processed() + static_cast<std::int64_t>(n));
    }
}
BENCHMARK(BM_TraceExpansion);

void
BM_BTreeInsert(benchmark::State &state)
{
    using namespace cgp;
    using namespace cgp::db;
    FunctionRegistry reg;
    TraceBuffer buf;
    DbContext ctx(reg, buf);
    Volume vol(ctx);
    BufferPool pool(ctx, vol, 1024);
    LockManager locks(ctx);
    BTree tree(ctx, pool, vol, locks);
    std::int32_t k = 0;
    for (auto _ : state) {
        tree.insert(1, k, Rid{static_cast<PageId>(k), 0});
        ++k;
        if (buf.size() > 4'000'000) {
            state.PauseTiming();
            buf.clear();
            state.ResumeTiming();
        }
    }
}
BENCHMARK(BM_BTreeInsert);

void
BM_HeapFileScan(benchmark::State &state)
{
    using namespace cgp;
    using namespace cgp::db;
    FunctionRegistry reg;
    TraceBuffer buf;
    DbContext ctx(reg, buf);
    Volume vol(ctx);
    BufferPool pool(ctx, vol, 1024);
    LockManager locks(ctx);
    WriteAheadLog log(ctx);
    Schema schema({{"k", ColumnType::Int32, 4},
                   {"pad", ColumnType::Char, 60}});
    HeapFile file(ctx, pool, vol, locks, log, &schema);
    for (int i = 0; i < 2000; ++i) {
        Tuple t(&schema);
        t.setInt(0, i);
        file.createRec(1, t);
    }
    buf.clear();
    for (auto _ : state) {
        HeapFile::Scan scan(file, 1);
        Tuple t;
        std::uint64_t rows = 0;
        while (scan.next(t))
            ++rows;
        scan.close();
        benchmark::DoNotOptimize(rows);
        state.SetItemsProcessed(state.items_processed() +
                                static_cast<std::int64_t>(rows));
        buf.clear();
    }
}
BENCHMARK(BM_HeapFileScan);

void
BM_TraceSerializeRoundTrip(benchmark::State &state)
{
    using namespace cgp;
    TraceBuffer trace;
    TraceRecorder rec(trace);
    rec.call(1);
    for (int i = 0; i < 50'000; ++i) {
        rec.work(20);
        rec.branch(i % 2 == 0);
    }
    rec.ret();
    for (auto _ : state) {
        std::stringstream ss;
        saveTrace(trace, ss);
        TraceBuffer loaded;
        loadTrace(loaded, ss);
        benchmark::DoNotOptimize(loaded.size());
    }
}
BENCHMARK(BM_TraceSerializeRoundTrip);

void
BM_Interleave(benchmark::State &state)
{
    using namespace cgp;
    std::vector<TraceBuffer> threads(8);
    for (auto &t : threads) {
        TraceRecorder rec(t);
        rec.call(1);
        for (int i = 0; i < 20'000; ++i)
            rec.work(30);
        rec.ret();
    }
    std::vector<const TraceBuffer *> ptrs;
    for (auto &t : threads)
        ptrs.push_back(&t);
    InterleaveConfig cfg;
    cfg.quantumInstrs = 20'000;
    for (auto _ : state) {
        const TraceBuffer merged = interleaveTraces(ptrs, cfg);
        benchmark::DoNotOptimize(merged.size());
    }
}
BENCHMARK(BM_Interleave);

} // namespace

BENCHMARK_MAIN();
