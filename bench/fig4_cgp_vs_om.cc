/**
 * @file
 * Figure 4: Performance comparison of O5, OM and CGP.
 *
 * Bars (paper): O5, O5+OM, O5+CGP_2, O5+CGP_4, O5+OM+CGP_2,
 * O5+OM+CGP_4, for the four database workloads.  The paper reports:
 * OM ~11% speedup over O5; CGP_4 alone ~40%; OM+CGP_4 ~45% over O5
 * and ~30% over OM alone.  CGHC: two-level 2KB+32KB.
 */

#include <iostream>

#include "common.hh"

int
main()
{
    using namespace cgp;
    using namespace cgp::bench;

    const exp::CampaignRun run = runPaperCampaign("fig4");
    exp::printCycleTables(run, std::cout);

    std::cout << "\nGeometric-mean speedups (paper reference in "
                 "parentheses):\n";
    std::cout << "  OM over O5:        "
              << TablePrinter::fixed(
                     exp::geomeanSpeedup(run, "O5", "O5+OM"), 3)
              << "  (paper ~1.11)\n";
    std::cout << "  CGP_4 over O5:     "
              << TablePrinter::fixed(
                     exp::geomeanSpeedup(run, "O5", "O5+CGP_4"), 3)
              << "  (paper ~1.40)\n";
    std::cout << "  OM+CGP_4 over O5:  "
              << TablePrinter::fixed(
                     exp::geomeanSpeedup(run, "O5", "O5+OM+CGP_4"),
                     3)
              << "  (paper ~1.45)\n";
    std::cout << "  OM+CGP_4 over OM:  "
              << TablePrinter::fixed(
                     exp::geomeanSpeedup(run, "O5+OM",
                                         "O5+OM+CGP_4"),
                     3)
              << "  (paper ~1.30)\n";
    return 0;
}
