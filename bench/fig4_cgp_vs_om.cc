/**
 * @file
 * Figure 4: Performance comparison of O5, OM and CGP.
 *
 * Bars (paper): O5, O5+OM, O5+CGP_2, O5+CGP_4, O5+OM+CGP_2,
 * O5+OM+CGP_4, for the four database workloads.  The paper reports:
 * OM ~11% speedup over O5; CGP_4 alone ~40%; OM+CGP_4 ~45% over O5
 * and ~30% over OM alone.  CGHC: two-level 2KB+32KB.
 */

#include <cmath>
#include <iostream>

#include "common.hh"

int
main()
{
    using namespace cgp;
    using namespace cgp::bench;

    std::cerr << "building database workloads...\n";
    DbWorkloadSet set = WorkloadFactory::buildDbSet();

    const std::vector<SimConfig> configs = {
        SimConfig::o5(),
        SimConfig::o5Om(),
        SimConfig::withCgp(LayoutKind::Original, 2),
        SimConfig::withCgp(LayoutKind::Original, 4),
        SimConfig::withCgp(LayoutKind::PettisHansen, 2),
        SimConfig::withCgp(LayoutKind::PettisHansen, 4),
    };

    const ResultMatrix m = runMatrix(set.workloads, configs);
    printCycleTable("Figure 4", m, set.workloads, configs);

    std::cout << "\nGeometric-mean speedups (paper reference in "
                 "parentheses):\n";
    std::cout << "  OM over O5:        "
              << TablePrinter::fixed(
                     geomeanSpeedup(m, set.workloads, configs[0],
                                    configs[1]),
                     3)
              << "  (paper ~1.11)\n";
    std::cout << "  CGP_4 over O5:     "
              << TablePrinter::fixed(
                     geomeanSpeedup(m, set.workloads, configs[0],
                                    configs[3]),
                     3)
              << "  (paper ~1.40)\n";
    std::cout << "  OM+CGP_4 over O5:  "
              << TablePrinter::fixed(
                     geomeanSpeedup(m, set.workloads, configs[0],
                                    configs[5]),
                     3)
              << "  (paper ~1.45)\n";
    std::cout << "  OM+CGP_4 over OM:  "
              << TablePrinter::fixed(
                     geomeanSpeedup(m, set.workloads, configs[1],
                                    configs[5]),
                     3)
              << "  (paper ~1.30)\n";
    return 0;
}
