/**
 * @file
 * Run the Wisconsin benchmark through the full pipeline, one query
 * at a time: load the database, record each query's trace, and show
 * how CGP changes its I-cache behaviour.  Demonstrates the
 * lower-level API (DbSystem + Wisconsin + InstructionExpander)
 * beneath the WorkloadFactory convenience layer.
 */

#include <iostream>
#include <memory>

#include "db/dbsys.hh"
#include "db/wisconsin.hh"
#include "harness/simulator.hh"
#include "util/table.hh"

int
main()
{
    using namespace cgp;

    const std::uint32_t n = 2000;

    std::cout << "Loading a " << n
              << "-tuple Wisconsin database (big1, big2, small + "
                 "indexes)...\n";
    auto registry = std::make_shared<FunctionRegistry>();
    TraceBuffer load_trace;
    db::DbSystem dbsys(*registry, load_trace);
    db::Wisconsin::load(dbsys, n);
    std::cout << "  " << registry->size()
              << " traced DBMS functions, "
              << registry->totalCodeBytes() / 1024
              << " KB of synthesized code\n\n";

    TablePrinter t("Wisconsin queries under O5 vs O5+OM+CGP_4");
    t.setHeader({"query", "rows", "instrs", "I$ misses (O5)",
                 "I$ misses (CGP)", "speedup"});

    for (int q : {1, 2, 5, 6, 7, 9}) {
        // Record the query's execution as a trace.
        auto trace = std::make_shared<TraceBuffer>();
        dbsys.record(*trace);
        Rng rng(1000 + static_cast<std::uint64_t>(q));
        const std::uint64_t rows =
            db::Wisconsin::runQuery(dbsys, q, n, rng);

        // Wrap it as a workload; the OM profile comes from the same
        // trace (self-profiling, fine for a demo).
        Workload w;
        w.name = db::Wisconsin::queryName(q);
        w.registry = registry;
        w.trace = trace;
        {
            LayoutBuilder builder(*registry);
            const CodeImage o5 = builder.buildOriginal();
            InstructionExpander ex(*registry, o5, *trace);
            auto profile = std::make_shared<ExecutionProfile>();
            ex.setProfile(profile.get());
            DynInst inst;
            while (ex.next(inst)) {
            }
            w.omProfile = profile;
        }

        const SimResult base = runSimulation(w, SimConfig::o5());
        const SimResult cgp = runSimulation(
            w, SimConfig::withCgp(LayoutKind::PettisHansen, 4));

        t.addRow({db::Wisconsin::queryName(q),
                  TablePrinter::num(rows),
                  TablePrinter::num(base.instrs),
                  TablePrinter::num(base.icacheMisses),
                  TablePrinter::num(cgp.icacheMisses),
                  TablePrinter::fixed(
                      static_cast<double>(base.cycles) /
                          static_cast<double>(cgp.cycles),
                      2) + "x"});
    }
    t.print(std::cout);

    std::cout << "\nNote: single queries in isolation have small "
                 "working sets; the paper's gains appear with the "
                 "concurrent mixes (see bench/fig4_cgp_vs_om).\n";
    return 0;
}
