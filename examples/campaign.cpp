/**
 * @file
 * Defining and running an experiment campaign programmatically:
 * declare a spec with a config axis, run it on the parallel engine
 * with a resumable run directory, and read results back by
 * (workload, label).
 *
 * Run it twice with the same CGP_RUN_DIR to see resume in action —
 * the second invocation loads every job instead of simulating.
 */

#include <cstdlib>
#include <iostream>

#include "exp/artifact.hh"
#include "exp/engine.hh"
#include "harness/workload.hh"
#include "spec/cpu2000.hh"

int
main()
{
    using namespace cgp;

    // A campaign is data: workloads x labeled points on an axis.
    exp::CampaignSpec spec;
    spec.name = "example";
    spec.title = "Prefetch depth on a tiny SPEC proxy";
    spec.workloads = {"proxy"};
    spec.base = SimConfig::withCgp(LayoutKind::PettisHansen, 1);

    exp::ConfigAxis depth{"depth", {}};
    for (const unsigned n : {1u, 2u, 4u, 8u}) {
        depth.points.push_back(
            {"CGP_" + std::to_string(n),
             [n](SimConfig &c) { c.depth = n; }});
    }
    spec.axes.push_back(std::move(depth));

    // Workloads are resolved by name, once, before the pool starts.
    spec::SpecProgramSpec program;
    program.name = "proxy";
    program.functions = 60;
    program.hotFunctions = 30;
    program.workPerCall = 50.0;
    program.trainInstrs = 120'000;
    program.testInstrs = 30'000;
    exp::InMemoryProvider provider(
        {WorkloadFactory::buildSpec(program)});

    exp::EngineOptions opt;
    opt.threads = 4;
    // Per-job progress lines land in completion order, which varies
    // with scheduling; examples keep stdout byte-deterministic.
    opt.verbose = false;
    if (const char *dir = std::getenv("CGP_RUN_DIR"))
        opt.runDir = std::string(dir) + "/example";

    const exp::CampaignRun run =
        exp::runCampaign(spec, provider, opt);

    exp::printCycleTables(run, std::cout);
    std::cout << "\nexecuted " << run.executed << ", resumed "
              << run.skipped << ", threads " << run.threadsUsed
              << "\n";

    // Individual results are addressable by (workload, label).
    const SimResult &best = run.at("proxy", "CGP_4");
    std::cout << "CGP_4 cycles: " << best.cycles << "\n";
    return 0;
}
