/**
 * @file
 * Fault injection walkthrough: arm faults at the storage engine's
 * crash points, watch the hardened WAL/recovery path absorb them, and
 * dump the post-mortem event ring.
 *
 *   1. A transient volume error is retried with backoff — invisible
 *      to the workload beyond a counter.
 *   2. A crash injected mid-log-force kills the engine between
 *      device blocks; the crash-loop harness recovers and audits the
 *      committed-survives / losers-vanish invariant.
 *   3. A torn log write at the durability boundary is detected by
 *      the per-record checksum and dropped as the torn tail.
 *
 * Build: cmake --build build --target fault_injection
 * Run:   ./build/examples/fault_injection
 */

#include <cstdio>

#include "db/crashloop.hh"
#include "fault/fault.hh"
#include "util/logging.hh"

int
main()
{
    using namespace cgp;

    std::puts("== registered crash points ==");
    for (const auto &point : fault::FaultInjector::crashPoints())
        std::printf("  %s\n", point.c_str());

    // --- 1. Transient I/O: absorbed by retry, not an outage.
    {
        std::puts("\n== transient volume error (retried) ==");
        db::CrashLoopHarness harness;
        fault::FaultSpec spec;
        spec.kind = fault::FaultKind::TransientIo;
        spec.afterHits = 4;
        spec.count = 2; // errors twice, then the device recovers
        const auto res = harness.run("volume.write", spec);
        std::printf("  crashed=%d committed=%llu verified=%llu\n",
                    res.crashed ? 1 : 0,
                    static_cast<unsigned long long>(res.committedRows),
                    static_cast<unsigned long long>(res.verifiedRows));
    }

    // --- 2. Crash mid-force: the canonical torture test.
    {
        std::puts("\n== crash at wal.mid_force ==");
        db::CrashLoopHarness harness;
        fault::FaultSpec spec;
        spec.kind = fault::FaultKind::Crash;
        spec.afterHits = 6;
        const auto res = harness.run("wal.mid_force", spec);
        std::printf("  crashed=%d at '%s'\n", res.crashed ? 1 : 0,
                    res.crashPoint.c_str());
        std::printf("  recovery: winners=%u losers=%u redone=%llu "
                    "undone=%llu tornTail=%llu\n",
                    res.stats.winners, res.stats.losers,
                    static_cast<unsigned long long>(res.stats.redone),
                    static_cast<unsigned long long>(res.stats.undone),
                    static_cast<unsigned long long>(
                        res.stats.tornTail));
        std::printf("  audit: committed=%llu verified=%llu "
                    "missing=%llu survivingAborted=%llu -> %s\n",
                    static_cast<unsigned long long>(res.committedRows),
                    static_cast<unsigned long long>(res.verifiedRows),
                    static_cast<unsigned long long>(
                        res.missingCommitted),
                    static_cast<unsigned long long>(
                        res.survivingAborted),
                    res.ok() ? "OK" : "DATA LOSS");
    }

    // --- 3. Torn log write: detected by checksum, dropped as tail.
    {
        std::puts("\n== torn write at the durability boundary ==");
        db::CrashLoopHarness harness;
        fault::FaultSpec spec;
        spec.kind = fault::FaultKind::TornWrite;
        spec.afterHits = 3;
        const auto res = harness.run("wal.mid_force", spec);
        std::printf("  tornTail=%llu corruptRecords=%llu -> %s\n",
                    static_cast<unsigned long long>(
                        res.stats.tornTail),
                    static_cast<unsigned long long>(
                        res.stats.corruptRecords),
                    res.ok() ? "OK" : "DATA LOSS");
    }

    // --- Post-mortem: the ring buffer kept the story.
    std::puts("\n== last logged events (post-mortem ring) ==");
    dumpRecentEvents(stdout);
    return 0;
}
