/**
 * @file
 * Plugging a custom instruction prefetcher into the simulator.
 *
 * The InstrPrefetcher interface exposes the same three hook points
 * the paper's hardware uses (demand fetch of a new line, predicted
 * call, predicted return).  This example implements a simple
 * "call-target" prefetcher — on every predicted call, prefetch the
 * first N lines of the callee, with no history at all — and races it
 * against NL and full CGP on a database workload.  The gap between
 * call-target prefetching and CGP isolates the value of the CGHC's
 * one-call-ahead lookahead.
 *
 * The data side has the same extension point: implement
 * cgp::DataPrefetcher (src/dprefetch/dprefetcher.hh) and pass it as
 * the Core's fifth constructor argument to plug a custom D-side
 * engine into the L1-D access/miss/hint streams — see the stride,
 * correlation and semantic engines in src/dprefetch for examples.
 */

#include <iostream>
#include <memory>

#include "codegen/layout.hh"
#include "cpu/core.hh"
#include "harness/workload.hh"
#include "mem/hierarchy.hh"
#include "prefetch/cgp.hh"
#include "prefetch/nextline.hh"
#include "trace/expand.hh"
#include "util/table.hh"

namespace
{

/**
 * Prefetch the target of every predicted call — no history, no
 * timeliness: by the time the call is predicted, fetch is about to
 * redirect there anyway, so most of the benefit evaporates.  That is
 * precisely why CGP prefetches one call *ahead* via the CGHC.
 */
class CallTargetPrefetcher : public cgp::InstrPrefetcher
{
  public:
    CallTargetPrefetcher(cgp::Cache &l1i, unsigned depth)
        : l1i_(l1i), nl_(l1i, depth), depth_(depth)
    {
    }

    void
    onFetchLine(cgp::Addr line, cgp::Cycle now) override
    {
        nl_.onFetchLine(line, now);
    }

    void
    onCall(cgp::Addr callee_start, cgp::Addr caller_start,
           cgp::Cycle now) override
    {
        (void)caller_start;
        if (callee_start == cgp::invalidAddr)
            return;
        const cgp::Addr base = l1i_.lineAlign(callee_start);
        for (unsigned i = 0; i < depth_; ++i) {
            l1i_.prefetch(base + i * l1i_.lineBytes(), now + 1,
                          cgp::AccessSource::PrefetchCGHC);
        }
    }

    const char *name() const override { return "call-target"; }

  private:
    cgp::Cache &l1i_;
    cgp::NextNLinePrefetcher nl_;
    unsigned depth_;
};

/** Run one workload/prefetcher pair manually (no SimConfig). */
cgp::Cycle
runWith(const cgp::Workload &w,
        const std::function<std::unique_ptr<cgp::InstrPrefetcher>(
            cgp::Cache &)> &make_prefetcher,
        std::uint64_t *misses)
{
    using namespace cgp;
    LayoutBuilder builder(*w.registry);
    const CodeImage image = builder.buildPettisHansen(*w.omProfile);
    ExpanderConfig cfg;
    cfg.instrScale = 0.88; // OM binary
    InstructionExpander stream(*w.registry, image, *w.trace, cfg);
    MemoryHierarchy mem;
    auto prefetcher = make_prefetcher
        ? make_prefetcher(mem.l1i())
        : nullptr;
    Core core(stream, mem, prefetcher.get(), CoreConfig{});
    core.run();
    if (misses != nullptr)
        *misses = mem.l1i().demandMisses();
    return core.cycles();
}

} // namespace

int
main()
{
    using namespace cgp;

    ::setenv("CGP_SCALE", "0.1", 0);
    std::cout << "Building the wisc-large-2 workload...\n";
    DbWorkloadSet set = WorkloadFactory::buildDbSet();
    const Workload &w = set.workloads[2];

    TablePrinter t("Custom prefetcher vs the built-ins "
                   "(OM binary, N=4)");
    t.setHeader({"prefetcher", "cycles", "I$ misses", "vs none"});

    std::uint64_t base_misses = 0;
    const Cycle base = runWith(w, nullptr, &base_misses);

    struct Row
    {
        const char *name;
        std::function<std::unique_ptr<InstrPrefetcher>(Cache &)>
            make;
    };
    const Row rows[] = {
        {"none", nullptr},
        {"NL_4",
         [](Cache &l1i) {
             return std::make_unique<NextNLinePrefetcher>(l1i, 4);
         }},
        {"call-target (custom)",
         [](Cache &l1i) {
             return std::make_unique<CallTargetPrefetcher>(l1i, 4);
         }},
        {"CGP_4",
         [](Cache &l1i) {
             return std::make_unique<CgpPrefetcher>(
                 l1i, CghcConfig::twoLevel2K32K(), 4);
         }},
    };

    for (const auto &row : rows) {
        std::uint64_t misses = 0;
        const Cycle cycles =
            row.make ? runWith(w, row.make, &misses) : base;
        if (!row.make)
            misses = base_misses;
        t.addRow({row.name, TablePrinter::num(cycles),
                  TablePrinter::num(misses),
                  TablePrinter::fixed(static_cast<double>(base) /
                                          static_cast<double>(cycles),
                                      3) +
                      "x"});
    }
    t.print(std::cout);

    std::cout << "\nThe custom call-target prefetcher covers many "
                 "of the same lines as CGP, but it issues them at "
                 "call-predict time — fetch redirects to the callee "
                 "on the very next cycle, so its fills arrive as "
                 "delayed hits that still stall the front end.  The "
                 "CGHC issues the same prefetches one call earlier "
                 "(and adds return-time prefetches), which is where "
                 "CGP's timeliness advantage comes from (paper "
                 "S5.6).\n";
    return 0;
}
