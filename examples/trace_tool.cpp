/**
 * @file
 * Trace files: record a workload once, save it, and analyze it
 * offline.  Usage:
 *
 *   trace_tool record <path>   # record wisc-prof into <path>
 *   trace_tool info <path>     # anatomy of a saved trace
 *
 * With no arguments, does both against a temporary file — a
 * self-contained demo of the on-disk format.
 */

#include <cstdio>
#include <iostream>
#include <map>
#include <string>

#include "harness/workload.hh"
#include "trace/expand.hh"
#include "trace/serialize.hh"
#include "util/table.hh"

namespace
{

int
record(const std::string &path)
{
    using namespace cgp;
    std::cout << "Recording wisc-prof (storage manager + three "
                 "Wisconsin queries)...\n";
    DbWorkloadSet set = WorkloadFactory::buildDbSet();
    const Workload &w = set.workloads[0];
    if (!saveTraceFile(*w.trace, path)) {
        std::cerr << "error: cannot write " << path << "\n";
        return 1;
    }
    std::cout << "  wrote " << w.trace->size() << " events (~"
              << w.trace->approxInstrs() << " instructions) to "
              << path << "\n";
    return 0;
}

int
info(const std::string &path)
{
    using namespace cgp;
    TraceBuffer trace;
    if (!loadTraceFile(trace, path)) {
        std::cerr << "error: cannot load " << path
                  << " (missing or corrupt)\n";
        return 1;
    }

    std::map<EventKind, std::uint64_t> kinds;
    for (std::size_t i = 0; i < trace.size(); ++i)
        ++kinds[trace.at(i).kind()];

    TablePrinter t("trace anatomy: " + path);
    t.setHeader({"event kind", "count"});
    const std::pair<EventKind, const char *> names[] = {
        {EventKind::Call, "call"},     {EventKind::Return, "return"},
        {EventKind::Work, "work"},     {EventKind::Branch, "branch"},
        {EventKind::Load, "load"},     {EventKind::Store, "store"},
        {EventKind::Switch, "switch"},
    };
    for (const auto &[kind, name] : names)
        t.addRow({name, TablePrinter::num(kinds[kind])});
    t.addRule();
    t.addRow({"total events", TablePrinter::num(trace.size())});
    t.addRow({"approx instructions",
              TablePrinter::num(trace.approxInstrs())});
    t.addRow({"instructions / call",
              TablePrinter::fixed(
                  static_cast<double>(trace.approxInstrs()) /
                      static_cast<double>(trace.calls()),
                  1)});
    t.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 3 && std::string(argv[1]) == "record")
        return record(argv[2]);
    if (argc == 3 && std::string(argv[1]) == "info")
        return info(argv[2]);
    if (argc != 1) {
        std::cerr << "usage: trace_tool [record|info <path>]\n";
        return 2;
    }

    const std::string tmp = "/tmp/cgp_demo.trace";
    const int rc = record(tmp);
    if (rc != 0)
        return rc;
    const int rc2 = info(tmp);
    std::remove(tmp.c_str());
    return rc2;
}
