/**
 * @file
 * Quickstart: run one database workload under the baseline and under
 * CGP, and print the speedup.  This is the ~30-line tour of the
 * public API: WorkloadFactory -> SimConfig -> runSimulation.
 */

#include <iostream>

#include "harness/report.hh"
#include "harness/simulator.hh"
#include "harness/workload.hh"

int
main()
{
    using namespace cgp;

    std::cout << "Building the wisc-prof workload (real storage "
                 "manager + Wisconsin queries)...\n";
    DbWorkloadSet set = WorkloadFactory::buildDbSet();
    const Workload &w = set.workloads[0]; // wisc-prof

    std::cout << "Simulating the O5 baseline...\n";
    const SimResult base = runSimulation(w, SimConfig::o5());

    std::cout << "Simulating O5+OM+CGP_4...\n";
    const SimResult cgp = runSimulation(
        w, SimConfig::withCgp(LayoutKind::PettisHansen, 4));

    std::cout << "\n";
    writeComparison({base, cgp}, std::cout);
    std::cout << "\nDetailed CGP run:\n";
    writeReport(cgp, std::cout);
    std::cout << "\n  speedup: "
              << static_cast<double>(base.cycles) /
                     static_cast<double>(cgp.cycles)
              << "x\n";
    return 0;
}
