/**
 * @file
 * The paper's Figure 2 scenario, live: create records through the
 * storage manager and watch the Create_rec call sequence that CGP
 * learns — Find_page_in_buffer_pool, Lock_page, Update_page (page
 * insert), Unlock_page — then print the dynamic call-graph statistics
 * that motivated the CGHC's 8-slot entries (§3.2).
 */

#include <algorithm>
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "codegen/profile.hh"
#include "db/dbsys.hh"
#include "trace/expand.hh"
#include "util/table.hh"

int
main()
{
    using namespace cgp;

    auto registry = std::make_shared<FunctionRegistry>();
    TraceBuffer trace;
    db::DbSystem dbsys(*registry, trace);

    // A heap file to insert into (the Figure 2 scenario).
    db::Schema schema({{"id", db::ColumnType::Int32, 4},
                       {"payload", db::ColumnType::Char, 32}});
    dbsys.createTable("records", std::move(schema));

    std::cout << "Creating 500 records through "
                 "HeapFile::createRec (Create_rec)...\n\n";
    const db::TxnId txn = dbsys.txns().begin();
    for (int i = 0; i < 500; ++i) {
        db::Tuple t(dbsys.catalog().table("records").schema.get());
        t.setInt(0, i);
        t.setString(1, "payload" + std::to_string(i));
        dbsys.insertRow(txn, "records", t);
    }
    dbsys.txns().commit(txn);

    // Replay the trace to build the dynamic call graph.
    LayoutBuilder builder(*registry);
    const CodeImage image = builder.buildOriginal();
    InstructionExpander ex(*registry, image, trace);
    ExecutionProfile profile;
    ex.setProfile(&profile);
    DynInst inst;
    while (ex.next(inst)) {
    }

    // Show Create_rec's callee sequence — what a CGHC entry holds.
    const auto create_rec = registry->lookup("HeapFile::createRec");
    std::cout << "Direct callees of HeapFile::createRec (the call "
                 "sequence a CGHC entry predicts):\n";
    std::vector<std::pair<std::uint64_t, std::string>> callees;
    for (const auto &[edge, weight] : profile.callEdges()) {
        if (edge.first == create_rec) {
            callees.push_back(
                {weight, registry->function(edge.second).name});
        }
    }
    std::sort(callees.rbegin(), callees.rend());
    for (const auto &[weight, name] : callees)
        std::cout << "  " << name << "  (x" << weight << ")\n";

    // The §3.2 statistic that sized the CGHC data entry.
    const CallGraphAnalyzer analyzer(profile);
    std::cout << "\nDynamic call-graph statistics:\n";
    std::cout << "  functions that make calls: "
              << analyzer.callerCount() << "\n";
    std::cout << "  with < 8 distinct callees: "
              << TablePrinter::percent(
                     analyzer.fractionWithFewerCalleesThan(8))
              << "  (paper: ~80%, motivating 8 slots per CGHC "
                 "entry)\n";
    std::cout << "  max distinct callees:      "
              << analyzer.maxDistinctCallees() << "\n";

    std::cout << "\nTrace anatomy: " << trace.size() << " events, ~"
              << trace.approxInstrs() << " instructions, "
              << trace.calls() << " calls ("
              << TablePrinter::fixed(
                     static_cast<double>(trace.approxInstrs()) /
                         static_cast<double>(trace.calls()),
                     1)
              << " instructions/call; paper reports ~43 for DBMS "
                 "code)\n";
    return 0;
}
